"""Unit and fuzz tests for the CSR reachability snapshot.

The CSR engine must agree bit-for-bit with the reference dict-of-dict BFS
on every graph shape and horizon — both on its vectorized frontier path
and on the small-graph scalar path (``SCALAR_PAIR_LIMIT`` decides which
one runs, so the fuzz below pins both).
"""

import math
import random

import pytest

from repro.influence.reachability import reachable_set
from repro.tdn.csr import CSRSnapshot
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


def random_graph(rng, num_nodes=30, num_events=150, infinite_fraction=0.15):
    graph = TDNGraph()
    t = 0
    for _ in range(num_events):
        if rng.random() < 0.1:
            t += rng.randint(1, 4)
            graph.advance_to(t)
        u, v = rng.sample(range(num_nodes), 2)
        lifetime = None if rng.random() < infinite_fraction else rng.randint(1, 25)
        graph.add_interaction(Interaction(f"n{u}", f"n{v}", t, lifetime))
    return graph


class TestBuild:
    def test_empty_graph(self):
        snapshot = CSRSnapshot.build(TDNGraph())
        assert snapshot.num_nodes == 0
        assert snapshot.num_pairs == 0
        assert snapshot.reachable_count([]) == 0

    def test_arrays_cover_all_alive_pairs(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        graph.add_interaction(Interaction("a", "b", 0, 9))  # parallel, max 9
        graph.add_interaction(Interaction("b", "c", 0, None))
        snapshot = CSRSnapshot.build(graph)
        assert snapshot.num_nodes == 3
        assert snapshot.num_pairs == 2
        a, b, c = (graph.node_id(n) for n in "abc")
        row_a = snapshot.indices[snapshot.indptr[a] : snapshot.indptr[a + 1]]
        assert row_a.tolist() == [b]
        expiry_ab = snapshot.expiries[snapshot.indptr[a]]
        assert expiry_ab == 9.0  # per-pair *max* expiry
        row_b = snapshot.indices[snapshot.indptr[b] : snapshot.indptr[b + 1]]
        assert row_b.tolist() == [c]
        assert math.isinf(snapshot.expiries[snapshot.indptr[b]])

    def test_expired_pairs_are_absent(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        graph.add_interaction(Interaction("b", "c", 0, 10))
        graph.advance_to(5)
        snapshot = CSRSnapshot.build(graph)
        assert snapshot.num_nodes == 3  # interned ids persist
        assert snapshot.num_pairs == 1
        assert snapshot.reachable_count([graph.node_id("a")]) == 1


class TestGraphCaching:
    def test_engine_is_persistent_and_incremental(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 5))
        engine = graph.csr()
        assert graph.csr() is engine  # one engine for the graph's lifetime
        assert engine.compactions == 1  # the initial base build
        graph.add_interaction(Interaction("b", "c", 0, 5))
        synced = graph.csr()
        assert synced is engine  # mutation feeds the overlay, no rebuild
        assert engine.compactions == 1
        assert engine.overlay_entries == 1
        assert synced.version == graph.version
        # The overlay edge is immediately traversable.
        a = graph.node_id("a")
        assert engine.reachable_count([a]) == 3

    def test_stamped_visits_do_not_leak_across_queries(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 5))
        graph.add_interaction(Interaction("c", "d", 0, 5))
        snapshot = graph.csr()
        a, c = graph.node_id("a"), graph.node_id("c")
        assert snapshot.reachable_count([a]) == 2
        assert snapshot.reachable_count([c]) == 2
        assert snapshot.reachable_count([a, c]) == 4

    def test_out_of_range_ids_rejected(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 5))
        snapshot = graph.csr()
        with pytest.raises(IndexError):
            snapshot.reachable_count([99])
        with pytest.raises(IndexError):
            snapshot.reachable_ids([-1])


class TestEquivalenceFuzz:
    @pytest.mark.parametrize("force_vectorized", [False, True])
    def test_matches_reference_bfs(self, force_vectorized, monkeypatch):
        if force_vectorized:
            monkeypatch.setattr(CSRSnapshot, "SCALAR_PAIR_LIMIT", 0)
        rng = random.Random(42 + force_vectorized)
        for _ in range(25):
            graph = random_graph(rng)
            snapshot = graph.csr()
            t = graph.time
            horizons = [None, t + 1, t + rng.randint(1, 30), math.inf]
            nodes = sorted(graph.node_set(), key=repr)
            if not nodes:
                continue
            for _ in range(10):
                seeds = rng.sample(nodes, rng.randint(1, min(4, len(nodes))))
                horizon = rng.choice(horizons)
                expected = reachable_set(graph, seeds, horizon)
                ids = [graph.node_id(s) for s in seeds]
                got = {
                    graph.node_of_id(i)
                    for i in snapshot.reachable_ids(ids, horizon)
                }
                assert got == expected, (seeds, horizon)
                assert snapshot.reachable_count(ids, horizon) == len(expected)

    def test_scalar_and_vector_paths_agree(self, monkeypatch):
        rng = random.Random(7)
        graph = random_graph(rng, num_nodes=20, num_events=120)
        ids = list(range(graph.num_interned))
        scalar = graph.csr().reachable_ids(ids[:3], graph.time + 2)
        monkeypatch.setattr(CSRSnapshot, "SCALAR_PAIR_LIMIT", 0)
        fresh = CSRSnapshot.build(graph)
        vector = fresh.reachable_ids(ids[:3], graph.time + 2)
        assert scalar == vector


class TestAdaptiveScalarCutover:
    """Resolution precedence and calibration of the scalar/vector cutover."""

    def test_class_knob_wins_over_everything(self, monkeypatch):
        from repro.tdn import csr as csr_mod

        monkeypatch.setattr(CSRSnapshot, "SCALAR_PAIR_LIMIT", 7)
        monkeypatch.setenv(csr_mod.SCALAR_LIMIT_ENV, "999")
        assert csr_mod.resolve_scalar_pair_limit(override=123) == 7

    def test_constructor_override_beats_env(self, monkeypatch):
        from repro.tdn import csr as csr_mod

        monkeypatch.setenv(csr_mod.SCALAR_LIMIT_ENV, "999")
        assert csr_mod.resolve_scalar_pair_limit(override=123) == 123

    def test_env_override_beats_calibration(self, monkeypatch):
        from repro.tdn import csr as csr_mod

        monkeypatch.setenv(csr_mod.SCALAR_LIMIT_ENV, "4321")
        assert csr_mod.resolve_scalar_pair_limit() == 4321
        monkeypatch.setenv(csr_mod.SCALAR_LIMIT_ENV, "not-a-number")
        limit = csr_mod.resolve_scalar_pair_limit()  # falls through, clamped
        lo, hi = csr_mod._LIMIT_BOUNDS
        assert lo <= limit <= hi

    def test_calibration_is_cached_and_clamped(self):
        from repro.tdn import csr as csr_mod

        first = csr_mod.calibrate_scalar_pair_limit(force=True)
        lo, hi = csr_mod._LIMIT_BOUNDS
        assert lo <= first <= hi
        assert csr_mod.calibrate_scalar_pair_limit() == first  # cached

    def test_engine_override_pins_both_paths(self, rng=None):
        """A per-engine override steers the cutover without the class knob."""
        import random as random_mod

        from repro.tdn.csr import DeltaCSR

        rng = random_mod.Random(3)
        graph = random_graph(rng, num_nodes=15, num_events=80)
        forced_vector = DeltaCSR(graph, scalar_pair_limit=0)
        forced_scalar = DeltaCSR(graph, scalar_pair_limit=10**9)
        ids = list(range(graph.num_interned))
        horizon = graph.time + 3
        assert forced_vector.reachable_ids(ids[:4], horizon) == (
            forced_scalar.reachable_ids(ids[:4], horizon)
        )
        assert forced_vector.spread_counts([(i,) for i in ids], horizon) == (
            forced_scalar.spread_counts([(i,) for i in ids], horizon)
        )
