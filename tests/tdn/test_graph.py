"""Unit tests for TDNGraph: expiry, adjacency, horizon filtering."""

import math

import pytest

from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


def make_graph(events, upto):
    graph = TDNGraph()
    by_time = {}
    for e in events:
        by_time.setdefault(e.time, []).append(e)
    for t in range(upto + 1):
        graph.advance_to(t)
        for e in by_time.get(t, []):
            graph.add_interaction(e)
    return graph


class TestClock:
    def test_starts_at_zero(self):
        assert TDNGraph().time == 0

    def test_advance_and_tick(self):
        graph = TDNGraph()
        graph.advance_to(5)
        assert graph.time == 5
        graph.tick()
        assert graph.time == 6

    def test_rewind_rejected(self):
        graph = TDNGraph()
        graph.advance_to(3)
        with pytest.raises(ValueError, match="rewind"):
            graph.advance_to(2)

    def test_advance_returns_removed_count(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 1))
        graph.add_interaction(Interaction("a", "c", 0, 2))
        assert graph.advance_to(1) == 1
        assert graph.advance_to(2) == 1


class TestAddAndExpire:
    def test_edge_alive_then_expires(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        assert graph.num_edges == 1
        graph.advance_to(1)
        assert graph.num_edges == 1
        graph.advance_to(2)
        assert graph.num_edges == 0

    def test_node_removed_when_all_edges_expire(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 1))
        assert graph.has_node("a") and graph.has_node("b")
        graph.advance_to(1)
        assert not graph.has_node("a") and not graph.has_node("b")
        assert graph.num_nodes == 0

    def test_node_stays_while_any_edge_alive(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 1))
        graph.add_interaction(Interaction("c", "a", 0, 3))
        graph.advance_to(1)
        assert graph.has_node("a")  # still a target of c->a
        assert not graph.has_node("b")

    def test_multi_edges_counted(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 1))
        graph.add_interaction(Interaction("a", "b", 0, 5))
        assert graph.num_edges == 2
        assert graph.num_pairs == 1
        assert graph.interaction_count("a", "b") == 2
        graph.advance_to(1)
        assert graph.interaction_count("a", "b") == 1

    def test_stale_interaction_rejected(self):
        graph = TDNGraph()
        graph.advance_to(5)
        with pytest.raises(ValueError, match="not alive"):
            graph.add_interaction(Interaction("a", "b", 2, 2))

    def test_infinite_lifetime_never_expires(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0))
        graph.advance_to(10_000)
        assert graph.num_edges == 1

    def test_version_bumps_on_changes_only(self):
        graph = TDNGraph()
        v0 = graph.version
        graph.add_interaction(Interaction("a", "b", 0, 3))
        assert graph.version == v0 + 1
        v1 = graph.version
        graph.advance_to(1)  # nothing expires
        assert graph.version == v1
        graph.advance_to(3)  # the edge expires
        assert graph.version == v1 + 1


class TestPaperFig2Example:
    """Replays the exact 9-edge example of the paper's Fig. 2."""

    EDGES_T = [
        ("u1", "u2", 1),
        ("u1", "u3", 1),
        ("u1", "u4", 2),
        ("u5", "u3", 3),
        ("u6", "u4", 1),
        ("u6", "u7", 1),
    ]
    EDGES_T1 = [
        ("u5", "u2", 1),
        ("u7", "u4", 2),
        ("u7", "u6", 3),
    ]

    def build(self, upto):
        events = [Interaction(u, v, 0, lt) for u, v, lt in self.EDGES_T]
        events += [Interaction(u, v, 1, lt) for u, v, lt in self.EDGES_T1]
        return make_graph(events, upto)

    def test_time_t_edges(self):
        graph = self.build(0)
        assert graph.num_edges == 6
        assert set(graph.alive_pairs()) == {
            ("u1", "u2"), ("u1", "u3"), ("u1", "u4"),
            ("u5", "u3"), ("u6", "u4"), ("u6", "u7"),
        }

    def test_time_t_plus_1_matches_figure(self):
        # Per Fig. 2: e1, e2, e5, e6 expire; e3, e4 survive with decremented
        # lifetimes; e7, e8, e9 arrive.
        graph = self.build(1)
        assert set(graph.alive_pairs()) == {
            ("u1", "u4"), ("u5", "u3"),
            ("u5", "u2"), ("u7", "u4"), ("u7", "u6"),
        }
        assert graph.remaining_lifetime("u1", "u4") == 1
        assert graph.remaining_lifetime("u5", "u3") == 2
        assert graph.remaining_lifetime("u5", "u2") == 1
        assert graph.remaining_lifetime("u7", "u4") == 2
        assert graph.remaining_lifetime("u7", "u6") == 3


class TestHorizonFiltering:
    def test_out_neighbors_filtered_by_expiry(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))  # expiry 2
        graph.add_interaction(Interaction("a", "c", 0, 5))  # expiry 5
        assert set(graph.out_neighbors("a")) == {"b", "c"}
        assert set(graph.out_neighbors("a", min_expiry=3)) == {"c"}
        assert set(graph.out_neighbors("a", min_expiry=6)) == set()

    def test_in_neighbors_filtered_by_expiry(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "c", 0, 2))
        graph.add_interaction(Interaction("b", "c", 0, 5))
        assert set(graph.in_neighbors("c", min_expiry=3)) == {"b"}

    def test_max_expiry_uses_longest_parallel_edge(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 1))
        graph.add_interaction(Interaction("a", "b", 0, 4))
        assert graph.max_expiry("a", "b") == 4
        assert set(graph.out_neighbors("a", min_expiry=3)) == {"b"}
        graph.advance_to(1)  # short edge gone, long one remains
        assert graph.max_expiry("a", "b") == 4

    def test_max_expiry_recomputed_after_longest_expires(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        graph.advance_to(1)
        graph.add_interaction(Interaction("a", "b", 1, 4))  # expiry 5
        graph.advance_to(2)  # first edge (expiry 2) goes
        assert graph.max_expiry("a", "b") == 5

    def test_infinite_expiry_always_passes_filters(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0))
        assert set(graph.out_neighbors("a", min_expiry=10**9)) == {"b"}
        assert graph.max_expiry("a", "b") == math.inf


class TestExpiryRangeScan:
    def test_edges_with_expiry_in_range(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 1))  # expiry 1
        graph.add_interaction(Interaction("a", "c", 0, 3))  # expiry 3
        graph.add_interaction(Interaction("b", "c", 0, 5))  # expiry 5
        rows = list(graph.edges_with_expiry_in(2, 5))
        assert rows == [("a", "c", 3)]

    def test_range_scan_excludes_expired_buckets(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 1))
        graph.add_interaction(Interaction("a", "c", 0, 4))
        graph.advance_to(2)
        assert list(graph.edges_with_expiry_in(0, 100)) == [("a", "c", 4)]

    def test_range_scan_with_infinite_upper_bound(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        graph.add_interaction(Interaction("a", "c", 0))  # infinite
        rows = list(graph.edges_with_expiry_in(1, math.inf))
        # Infinite-expiry edges are never yielded (hi is exclusive).
        assert rows == [("a", "b", 2)]

    def test_range_scan_includes_parallel_edges(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 3))
        graph.add_interaction(Interaction("a", "b", 0, 3))
        assert list(graph.edges_with_expiry_in(1, 10)) == [
            ("a", "b", 3),
            ("a", "b", 3),
        ]


class TestRemovalListener:
    def test_listener_fires_per_removed_edge(self):
        removed = []
        graph = TDNGraph()
        graph.add_removal_listener(lambda u, v, left: removed.append((u, v, left)))
        graph.add_interaction(Interaction("a", "b", 0, 1))
        graph.add_interaction(Interaction("a", "b", 0, 1))
        graph.advance_to(1)
        assert removed == [("a", "b", 1), ("a", "b", 0)]


class TestInventories:
    def test_node_set_and_alive_interactions(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        graph.add_interaction(Interaction("c", "a", 0, 1))
        assert graph.node_set() == {"a", "b", "c"}
        rows = graph.alive_interactions()
        assert len(rows) == 2
        graph.advance_to(1)
        assert graph.node_set() == {"a", "b"}

    def test_alive_pairs_with_counts(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        graph.add_interaction(Interaction("a", "b", 0, 2))
        graph.add_interaction(Interaction("b", "c", 0, 2))
        assert sorted(graph.alive_pairs_with_counts()) == [
            ("a", "b", 2),
            ("b", "c", 1),
        ]

    def test_degrees(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        graph.add_interaction(Interaction("a", "c", 0, 2))
        graph.add_interaction(Interaction("c", "b", 0, 2))
        assert graph.out_degree("a") == 2
        assert graph.in_degree("b") == 2
        assert graph.out_degree("b") == 0


class TestSparseTimestamps:
    """Clock advancement must cost O(expired edges), never O(Δt)."""

    def test_million_scale_gap_completes_fast(self):
        import time as _time

        graph = TDNGraph()
        # Unix-second style timestamps: a handful of buckets, huge gaps.
        graph.add_interaction(Interaction("a", "b", 0, 5))
        graph.add_interaction(Interaction("b", "c", 0, 10_000_000))
        graph.add_interaction(Interaction("c", "d", 0, None))
        started = _time.perf_counter()
        removed = graph.advance_to(9_999_999)
        elapsed = _time.perf_counter() - started
        assert removed == 1  # only the lifetime-5 edge expired
        assert graph.num_edges == 2
        # O(Δt) iteration over a 10^7 gap takes seconds; the bucket drain
        # is microseconds.  A generous bound keeps slow CI honest.
        assert elapsed < 0.05, f"advance_to over 10^7 gap took {elapsed:.3f}s"
        removed = graph.advance_to(10_000_000)
        assert removed == 1
        assert graph.num_edges == 1  # only the infinite edge remains

    def test_sparse_advance_expires_exactly_the_due_buckets(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 3))
        graph.add_interaction(Interaction("a", "c", 0, 1_000_000))
        graph.add_interaction(Interaction("b", "c", 0, 2_000_000))
        assert graph.advance_to(999_999) == 1
        assert graph.advance_to(1_500_000) == 1
        assert set(graph.alive_pairs()) == {("b", "c")}
        assert graph.advance_to(2_000_000) == 1
        assert graph.num_edges == 0

    def test_interleaved_adds_keep_key_order(self):
        # A later add may create a bucket *below* existing keys; the sorted
        # key structure must stay ordered so drains and range scans agree.
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 50))  # expiry 50
        graph.add_interaction(Interaction("a", "c", 0, 10))  # expiry 10
        graph.advance_to(5)
        graph.add_interaction(Interaction("b", "c", 5, 2))  # expiry 7
        assert [e for _, _, e in graph.edges_with_expiry_in(0, 100)] == [7, 10, 50]
        assert graph.advance_to(9) == 1  # only expiry 7 is due
        assert graph.advance_to(10) == 1  # then expiry 10
        assert set(graph.alive_pairs()) == {("a", "b")}


class TestNodeInterning:
    def test_ids_dense_and_stable(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        graph.add_interaction(Interaction("b", "c", 0, 5))
        assert graph.num_interned == 3
        assert [graph.node_id(n) for n in ("a", "b", "c")] == [0, 1, 2]
        assert graph.node_of_id(2) == "c"
        graph.advance_to(2)  # (a, b) expires; ids must not shift
        assert graph.node_id("a") == 0
        assert graph.num_interned == 3
        graph.add_interaction(Interaction("a", "d", 2, 3))
        assert graph.node_id("d") == 3

    def test_intern_ids_counts_unknown_nodes(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        ids, unknown = graph.intern_ids(["a", "ghost", "b", "phantom"])
        assert sorted(ids) == [0, 1]
        assert unknown == 2

    def test_unknown_node_id_is_none(self):
        assert TDNGraph().node_id("nope") is None

    def test_removal_listener_may_mutate_mid_drain(self):
        # A removal listener that inserts edges while advance_to drains
        # must not desync the sorted key structure from the buckets.
        graph = TDNGraph()

        def reinsert(u, v, remaining):
            if u == "a" and graph.num_edges < 5:
                graph.add_interaction(Interaction("x", "y", 0, 100))

        graph.add_removal_listener(reinsert)
        graph.add_interaction(Interaction("a", "b", 0, 3))
        graph.add_interaction(Interaction("b", "c", 0, 8))
        assert graph.advance_to(5) == 1  # (a, b) expired, (x, y) inserted
        assert set(graph.alive_pairs()) == {("b", "c"), ("x", "y")}
        assert graph.advance_to(8) == 1  # (b, c) expires cleanly afterwards
        assert graph.advance_to(100) == 1  # and so does the reinserted edge
        assert graph.num_edges == 0


class TestO1Inventories:
    """num_nodes / num_pairs are maintained counters, not full scans."""

    def test_counters_track_full_recomputation(self):
        import random

        rng = random.Random(29)
        graph = TDNGraph()
        t = 0
        for _ in range(400):
            if rng.random() < 0.2:
                t += rng.randint(1, 4)
                graph.advance_to(t)
            u, v = rng.sample(range(18), 2)
            lifetime = None if rng.random() < 0.1 else rng.randint(1, 15)
            graph.add_interaction(Interaction(f"n{u}", f"n{v}", t, lifetime))
            assert graph.num_nodes == len(graph.node_set())
            assert graph.num_pairs == sum(len(nbrs) for nbrs in graph._out.values())
        # After a deep advance only the infinite-lifetime edges remain, and
        # the counters still agree with full recomputation.
        graph.advance_to(t + 1_000)
        assert graph.num_nodes == len(graph.node_set())
        assert graph.num_pairs == sum(len(nbrs) for nbrs in graph._out.values())
        assert graph.num_edges == len(graph.alive_interactions())

    def test_parallel_edges_do_not_double_count(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 5))
        graph.add_interaction(Interaction("a", "b", 0, 9))
        assert graph.num_pairs == 1
        assert graph.num_nodes == 2
        graph.advance_to(5)  # first parallel edge expires; pair survives
        assert graph.num_pairs == 1
        assert graph.num_nodes == 2
        graph.advance_to(9)  # pair dies, both nodes decay
        assert graph.num_pairs == 0
        assert graph.num_nodes == 0

    def test_shared_endpoint_decay(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 3))
        graph.add_interaction(Interaction("b", "c", 0, 7))
        assert (graph.num_nodes, graph.num_pairs) == (3, 2)
        graph.advance_to(3)  # a->b dies; b survives via b->c
        assert (graph.num_nodes, graph.num_pairs) == (2, 1)
        graph.advance_to(7)
        assert (graph.num_nodes, graph.num_pairs) == (0, 0)


class TestExpiryKeyStructures:
    """The heap drain + sorted overlay behind expiries and range scans."""

    def test_heap_drains_in_order_across_sparse_gaps(self):
        graph = TDNGraph()
        # Insert with wildly out-of-order expiries.
        for lifetime in (900, 3, 50_000, 17, 4):
            graph.add_interaction(Interaction("a", f"b{lifetime}", 0, lifetime))
        assert graph.advance_to(20) == 3  # lifetimes 3, 4 and 17
        assert graph.advance_to(100_000) == 2  # lifetimes 900 and 50_000
        assert graph.num_edges == 0
        assert graph._expiry_heap == []

    def test_overlay_merge_prunes_drained_keys(self):
        graph = TDNGraph()
        for lifetime in (2, 5, 9):
            graph.add_interaction(Interaction("a", f"b{lifetime}", 0, lifetime))
        assert [e for _, _, e in graph.edges_with_expiry_in(0, 100)] == [2, 5, 9]
        graph.advance_to(5)
        # New key lands in the pending appendix; the next scan merges it
        # and never re-yields the drained keys.
        graph.add_interaction(Interaction("a", "c", 5, 2))
        rows = [e for _, _, e in graph.edges_with_expiry_in(0, 100)]
        assert rows == [7, 9]
        assert graph._expiry_pending == []
        assert graph._expiry_sorted == [7, 9]

    def test_range_scan_after_pure_advance(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 4))
        graph.add_interaction(Interaction("b", "c", 0, 8))
        graph.advance_to(4)
        # No insert since the drain: the sorted overlay was prefix-pruned
        # in advance_to and the scan sees only the surviving key.
        assert [e for _, _, e in graph.edges_with_expiry_in(0, 100)] == [8]

    def test_duplicate_expiry_keys_are_single_heap_entries(self):
        graph = TDNGraph()
        for target in "bcd":
            graph.add_interaction(Interaction("a", target, 0, 6))
        assert len(graph._expiry_heap) == 1  # one bucket, one key
        assert graph.advance_to(6) == 3

    def test_mass_out_of_order_inserts_match_reference(self, rng):
        """Fuzz: heap+overlay bookkeeping equals a from-scratch recompute."""
        graph = TDNGraph()
        t = 0
        for step in range(300):
            if rng.random() < 0.3:
                t += rng.randint(1, 15)
                graph.advance_to(t)
            u = rng.randrange(12)
            v = (u + 1 + rng.randrange(10)) % 12
            graph.add_interaction(
                Interaction(f"n{u}", f"n{v}", t, rng.randint(1, 120))
            )
            if step % 37 == 0:
                lo = t + rng.randint(0, 30)
                hi = lo + rng.randint(1, 60)
                expected = sorted(
                    (step_key, u2, v2)
                    for step_key, bucket in graph._expiry_buckets.items()
                    if lo <= step_key < hi and step_key > t
                    for u2, v2 in bucket
                )
                got = sorted(
                    (e, u2, v2) for u2, v2, e in graph.edges_with_expiry_in(lo, hi)
                )
                assert got == expected
        # Full drain leaves every structure empty of finite keys.
        graph.advance_to(t + 1_000)
        assert graph._expiry_heap == []
        assert [k for k in graph._expiry_sorted if k <= graph.time] == []

    def test_removal_listener_may_scan_ranges_mid_drain(self):
        """The seed guarantee: listeners can call edges_with_expiry_in
        while advance_to is draining, without tripping on popped keys."""
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 3))
        graph.add_interaction(Interaction("b", "c", 0, 4))
        graph.add_interaction(Interaction("c", "d", 0, 50))
        seen = []

        def listener(u, v, remaining):
            seen.append([e for _, _, e in graph.edges_with_expiry_in(0, 100)])

        graph.add_removal_listener(listener)
        assert graph.advance_to(10) == 2
        # Each mid-drain scan completed (no KeyError) and never yielded a
        # key at or below the drain target.
        assert len(seen) == 2
        for rows in seen:
            assert all(e > 10 for e in rows)
        assert [e for _, _, e in graph.edges_with_expiry_in(0, 100)] == [50]
