"""Unit and statistical tests for lifetime policies (paper Examples 3-5)."""

import random

import pytest

from repro.tdn.interaction import Interaction
from repro.tdn.lifetimes import (
    ConstantLifetime,
    FunctionLifetime,
    GeometricLifetime,
    InfiniteLifetime,
    PowerLawLifetime,
    UniformLifetime,
)

EVENT = Interaction("a", "b", 0)


class TestInfiniteLifetime:
    def test_draw_is_none(self):
        assert InfiniteLifetime().draw(EVENT) is None

    def test_assign_keeps_infinite(self):
        assert InfiniteLifetime().assign(EVENT).lifetime is None

    def test_no_max(self):
        assert InfiniteLifetime().max_lifetime is None


class TestConstantLifetime:
    def test_draw_equals_window(self):
        policy = ConstantLifetime(7)
        assert policy.draw(EVENT) == 7
        assert policy.max_lifetime == 7

    def test_window_validation(self):
        with pytest.raises(ValueError):
            ConstantLifetime(0)

    def test_sliding_window_semantics(self):
        # Example 4: lifetime W means the edge is alive for exactly W steps.
        assigned = ConstantLifetime(3).assign(Interaction("a", "b", 10))
        assert assigned.alive_at(12)
        assert not assigned.alive_at(13)


class TestGeometricLifetime:
    def test_draws_in_range(self):
        policy = GeometricLifetime(0.2, max_lifetime=10, seed=1)
        draws = [policy.draw(EVENT) for _ in range(500)]
        assert all(1 <= d <= 10 for d in draws)

    def test_untruncated_mean_close_to_1_over_p(self):
        # E[Geo(p)] = 1/p; statistical check with generous tolerance.
        p = 0.1
        policy = GeometricLifetime(p, seed=7)
        draws = [policy.draw(EVENT) for _ in range(20_000)]
        mean = sum(draws) / len(draws)
        assert abs(mean - 1.0 / p) < 0.5

    def test_distribution_shape(self):
        # Pr(l = 1) = p for the untruncated geometric.
        p = 0.3
        policy = GeometricLifetime(p, seed=11)
        draws = [policy.draw(EVENT) for _ in range(20_000)]
        frac_one = sum(1 for d in draws if d == 1) / len(draws)
        assert abs(frac_one - p) < 0.02

    def test_equivalence_with_per_step_deletion(self):
        """Paper Example 5: geometric lifetimes == forgetting with prob p.

        Simulate the per-step deletion process directly and compare the
        empirical survival distribution against the policy's draws.
        """
        p = 0.25
        rng = random.Random(3)
        simulated = []
        for _ in range(20_000):
            lifetime = 1
            while rng.random() >= p:
                lifetime += 1
                if lifetime > 200:
                    break
            simulated.append(lifetime)
        policy = GeometricLifetime(p, seed=5)
        drawn = [policy.draw(EVENT) for _ in range(20_000)]
        sim_mean = sum(simulated) / len(simulated)
        drawn_mean = sum(drawn) / len(drawn)
        assert abs(sim_mean - drawn_mean) < 0.15

    def test_truncation_respected(self):
        policy = GeometricLifetime(0.001, max_lifetime=50, seed=2)
        assert max(policy.draw(EVENT) for _ in range(2_000)) <= 50

    def test_p_validation(self):
        with pytest.raises(ValueError):
            GeometricLifetime(0.0)
        with pytest.raises(ValueError):
            GeometricLifetime(1.0)


class TestUniformLifetime:
    def test_draws_cover_range(self):
        policy = UniformLifetime(2, 5, seed=1)
        draws = {policy.draw(EVENT) for _ in range(500)}
        assert draws == {2, 3, 4, 5}

    def test_invalid_range(self):
        with pytest.raises(ValueError, match="high"):
            UniformLifetime(5, 2)


class TestPowerLawLifetime:
    def test_draws_in_range(self):
        policy = PowerLawLifetime(2.0, 20, seed=1)
        draws = [policy.draw(EVENT) for _ in range(1_000)]
        assert all(1 <= d <= 20 for d in draws)

    def test_heavy_head(self):
        # With alpha=2 over {1..20}, Pr(1) = 1 / sum(1/l^2) ~ 0.645.
        policy = PowerLawLifetime(2.0, 20, seed=3)
        draws = [policy.draw(EVENT) for _ in range(20_000)]
        frac_one = sum(1 for d in draws if d == 1) / len(draws)
        expected = 1.0 / sum(n**-2.0 for n in range(1, 21))
        assert abs(frac_one - expected) < 0.02


class TestFunctionLifetime:
    def test_delegates(self):
        policy = FunctionLifetime(lambda i: 4 if i.source == "a" else 9)
        assert policy.draw(Interaction("a", "b", 0)) == 4
        assert policy.draw(Interaction("c", "b", 0)) == 9

    def test_clamps_to_max(self):
        policy = FunctionLifetime(lambda i: 100, max_lifetime=10)
        assert policy.draw(EVENT) == 10

    def test_invalid_return_rejected(self):
        policy = FunctionLifetime(lambda i: 0)
        with pytest.raises(ValueError):
            policy.draw(EVENT)

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            FunctionLifetime(42)

    def test_none_means_infinite(self):
        policy = FunctionLifetime(lambda i: None)
        assert policy.assign(EVENT).lifetime is None
