"""Unit tests for interaction streams and batching."""

import pytest

from repro.tdn.interaction import Interaction
from repro.tdn.lifetimes import ConstantLifetime
from repro.tdn.stream import BatchedStream, MemoryStream, group_by_lifetime


def events():
    return [
        Interaction("a", "b", 0),
        Interaction("b", "c", 0),
        Interaction("c", "d", 2),
        Interaction("d", "e", 5),
    ]


class TestMemoryStream:
    def test_groups_by_time(self):
        stream = MemoryStream(events())
        batches = list(stream)
        assert [t for t, _ in batches] == [0, 2, 5]
        assert len(batches[0][1]) == 2

    def test_fill_gaps(self):
        stream = MemoryStream(events(), fill_gaps=True)
        batches = list(stream)
        assert [t for t, _ in batches] == [0, 1, 2, 3, 4, 5]
        assert batches[1][1] == []

    def test_len(self):
        assert len(MemoryStream(events())) == 3
        assert len(MemoryStream(events(), fill_gaps=True)) == 6
        assert len(MemoryStream([])) == 0

    def test_empty_stream_iterates_nothing(self):
        assert list(MemoryStream([])) == []

    def test_replayable(self):
        stream = MemoryStream(events())
        assert list(stream) == list(stream)


class TestBatchedStream:
    def test_rebatches_and_retimes(self):
        stream = BatchedStream(events(), batch_size=3)
        batches = list(stream)
        assert [t for t, _ in batches] == [0, 1]
        assert len(batches[0][1]) == 3
        assert len(batches[1][1]) == 1
        # Events are restamped with the new step.
        assert all(i.time == 0 for i in batches[0][1])

    def test_order_preserved(self):
        stream = BatchedStream(events(), batch_size=1)
        flattened = [i for _, batch in stream for i in batch]
        assert [(i.source, i.target) for i in flattened] == [
            ("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"),
        ]

    def test_len_rounds_up(self):
        assert len(BatchedStream(events(), batch_size=3)) == 2

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchedStream(events(), batch_size=0)


class TestStreamCombinators:
    def test_with_lifetimes_assigns_missing_only(self):
        raw = [Interaction("a", "b", 0), Interaction("b", "c", 0, 9)]
        stream = MemoryStream(raw).with_lifetimes(ConstantLifetime(4))
        (t, batch), = list(stream)
        assert batch[0].lifetime == 4
        assert batch[1].lifetime == 9  # pre-assigned untouched

    def test_take_truncates(self):
        stream = MemoryStream(events()).take(2)
        assert [t for t, _ in stream] == [0, 2]

    def test_take_zero(self):
        assert list(MemoryStream(events()).take(0)) == []

    def test_materialize(self):
        assert MemoryStream(events()).materialize() == list(MemoryStream(events()))


class TestGroupByLifetime:
    def test_partitions_by_lifetime(self):
        batch = [
            Interaction("a", "b", 0, 1),
            Interaction("b", "c", 0, 1),
            Interaction("c", "d", 0, 3),
            Interaction("d", "e", 0),
        ]
        groups = group_by_lifetime(batch)
        assert {k: len(v) for k, v in groups.items()} == {1: 2, 3: 1, None: 1}

    def test_empty_batch(self):
        assert group_by_lifetime([]) == {}
