"""The public facade: ``open_tracker``, the ``Semantics`` enum, errors.

``repro.api`` (re-exported from the bare ``repro`` package) is the one
surface covered by the compatibility promise, so these tests pin its
routing: algorithm + semantics names resolve to correctly configured
trackers, the weighted path injects a :class:`WeightedInfluenceOracle`,
inconsistent combinations fail fast with the facade's own exception
types, and the exception hierarchy keeps its dual stdlib parentage so
pre-hierarchy ``except ValueError`` callers never break.
"""

import pytest

import repro
from repro import Semantics, open_tracker
from repro.api import InfluenceTracker, Solution
from repro.errors import (
    ConfigError,
    DegradedExecutionError,
    PersistenceError,
    ReproError,
    SemanticsError,
)
from repro.kernels.folds import FOLD_NAMES


class TestOpenTracker:
    def test_default_is_hist_approx_under_counts(self):
        tracker = open_tracker()
        assert isinstance(tracker, InfluenceTracker)
        assert tracker.oracle.semantics == "count"
        assert type(tracker.algorithm).__name__ == "HistApprox"

    def test_step_returns_solutions(self):
        tracker = open_tracker("hist-approx", k=2, epsilon=0.2)
        solution = tracker.step(0, [("a", "b"), ("a", "c")])
        assert isinstance(solution, Solution)
        assert "a" in solution.nodes

    def test_enum_members_cover_the_fold_registry_exactly(self):
        assert sorted(member.value for member in Semantics) == list(FOLD_NAMES)

    def test_enum_and_string_spell_the_same_semantics(self):
        via_enum = open_tracker("trend", k=2, semantics=Semantics.TIME_DECAY)
        via_name = open_tracker("trend", k=2, semantics="time_decay")
        assert via_enum.oracle.fold == via_name.oracle.fold

    def test_semantics_params_parameterize_a_named_fold(self):
        tracker = open_tracker(
            "decayed-centrality",
            k=3,
            semantics=Semantics.HOP_DISCOUNT,
            semantics_params={"alpha": 0.8},
        )
        assert tracker.oracle.fold.spec() == ("hop_discount", {"alpha": 0.8})

    def test_semantics_params_require_a_name(self):
        with pytest.raises(ConfigError, match="given by name"):
            open_tracker(
                semantics=("hop_discount", {"alpha": 0.5}),
                semantics_params={"alpha": 0.8},
            )

    def test_unknown_semantics_fail_fast_at_the_facade(self):
        with pytest.raises(SemanticsError, match="unknown influence semantics"):
            open_tracker(semantics="pagerank")

    def test_unknown_algorithm_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown algorithm"):
            open_tracker("simulated-annealing")


class TestWeightedPath:
    def test_weighted_sum_injects_a_weighted_oracle(self):
        from repro.influence.weighted import WeightedInfluenceOracle

        tracker = open_tracker(
            "hist-approx",
            k=2,
            semantics=Semantics.WEIGHTED_SUM,
            weights={"vip": 10.0},
        )
        assert isinstance(tracker.oracle, WeightedInfluenceOracle)
        solution = tracker.step(0, [("a", "vip"), ("b", "c")])
        # Reaching the weighted node dominates the plain pair.
        assert "a" in solution.nodes

    def test_default_weight_reaches_the_oracle(self):
        tracker = open_tracker(
            semantics="weighted_sum", weights={}, default_weight=3.0
        )
        solution = tracker.step(0, [("a", "b")])
        assert solution.value == 6.0  # two nodes at weight 3 each

    def test_weights_without_weighted_sum_rejected(self):
        with pytest.raises(ConfigError, match="only meaningful"):
            open_tracker(semantics=Semantics.COUNT, weights={"a": 2.0})
        with pytest.raises(ConfigError, match="only meaningful"):
            open_tracker(weights={"a": 2.0})


class TestErrorHierarchy:
    def test_every_library_error_is_a_repro_error(self):
        for exc in (
            ConfigError,
            SemanticsError,
            PersistenceError,
            DegradedExecutionError,
        ):
            assert issubclass(exc, ReproError)

    def test_dual_stdlib_parentage_for_compatibility(self):
        """Pre-hierarchy callers caught ValueError/RuntimeError; they must
        keep working against the typed hierarchy."""
        assert issubclass(ConfigError, ValueError)
        assert issubclass(SemanticsError, ConfigError)
        assert issubclass(PersistenceError, ValueError)
        assert issubclass(DegradedExecutionError, RuntimeError)

    def test_facade_raises_are_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            open_tracker(semantics="pagerank")
        with pytest.raises(ReproError):
            open_tracker("basic-reduction")  # missing L


class TestRootReExports:
    def test_facade_symbols_on_the_bare_package(self):
        assert repro.open_tracker is open_tracker
        assert repro.Semantics is Semantics
        for name in (
            "open_tracker",
            "Semantics",
            "ReproError",
            "ConfigError",
            "SemanticsError",
            "PersistenceError",
            "DegradedExecutionError",
            "DecayedCentralityTracker",
            "TrendTracker",
            "enable_kernel_metrics",
            "disable_kernel_metrics",
            "metric_names",
            "metrics_registry",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_api_all_is_the_compatibility_surface(self):
        import repro.api

        assert sorted(repro.api.__all__) == [
            "ConfigError",
            "DegradedExecutionError",
            "InfluenceTracker",
            "PersistenceError",
            "ReproError",
            "Semantics",
            "SemanticsError",
            "Solution",
            "disable_kernel_metrics",
            "enable_kernel_metrics",
            "metric_names",
            "metrics_registry",
            "open_tracker",
        ]
