"""Unit tests for counters, RNG helpers, and validation."""

import random

import pytest

from repro.utils.counters import CallCounter
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)


class TestCallCounter:
    def test_increment_and_total(self):
        counter = CallCounter()
        counter.increment()
        counter.increment(4)
        assert counter.total == 5

    def test_snapshot_delta(self):
        counter = CallCounter()
        counter.increment(3)
        snap = counter.snapshot()
        counter.increment(2)
        assert counter.delta_since(snap) == 2

    def test_reset(self):
        counter = CallCounter()
        counter.increment(9)
        counter.reset()
        assert counter.total == 0


class TestRng:
    def test_make_rng_from_seed(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_make_rng_passthrough(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_make_rng_fresh(self):
        assert isinstance(make_rng(None), random.Random)

    def test_spawn_rngs_independent_and_reproducible(self):
        a1, a2 = spawn_rngs(5, 2)
        b1, b2 = spawn_rngs(5, 2)
        assert a1.random() == b1.random()
        assert a2.random() == b2.random()
        assert spawn_rngs(5, 2)[0].random() != spawn_rngs(5, 2)[1].random()

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestValidation:
    def test_check_positive_int(self):
        assert check_positive_int(3, "x") == 3
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_check_positive(self):
        assert check_positive(0.5, "x") == 0.5
        with pytest.raises(ValueError):
            check_positive(0, "x")
        with pytest.raises(TypeError):
            check_positive("1", "x")

    def test_check_non_negative(self):
        assert check_non_negative(0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")

    def test_check_fraction(self):
        assert check_fraction(0.5, "x") == 0.5
        with pytest.raises(ValueError):
            check_fraction(0.0, "x")
        with pytest.raises(ValueError):
            check_fraction(1.0, "x")
        assert check_fraction(0.0, "x", inclusive=True) == 0.0
        assert check_fraction(1.0, "x", inclusive=True) == 1.0
        with pytest.raises(ValueError):
            check_fraction(1.1, "x", inclusive=True)
