"""Unit tests for solution-stability metrics."""

import pytest

from repro.analysis.stability import (
    SolutionHistory,
    jaccard,
    mean_jaccard_stability,
    node_tenures,
    turnover_rate,
)


class TestJaccard:
    def test_identical(self):
        assert jaccard(["a", "b"], ["b", "a"]) == 1.0

    def test_disjoint(self):
        assert jaccard(["a"], ["b"]) == 0.0

    def test_partial(self):
        assert jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard([], []) == 1.0

    def test_one_empty(self):
        assert jaccard(["a"], []) == 0.0


class TestSolutionHistory:
    def test_record_and_len(self):
        history = SolutionHistory()
        history.record(0, ["a"])
        history.record(5, ["b"])
        assert len(history) == 2
        assert history.times == [0, 5]

    def test_non_increasing_time_rejected(self):
        history = SolutionHistory()
        history.record(3, ["a"])
        with pytest.raises(ValueError, match="increasing"):
            history.record(3, ["b"])

    def test_mean_stability(self):
        history = SolutionHistory()
        history.record(0, ["a", "b"])
        history.record(1, ["a", "b"])
        history.record(2, ["c", "d"])
        assert history.mean_stability() == pytest.approx(0.5)

    def test_single_solution_is_stable(self):
        history = SolutionHistory()
        history.record(0, ["a"])
        assert history.mean_stability() == 1.0
        assert history.mean_turnover() == 0.0

    def test_tenures_and_ever_selected(self):
        history = SolutionHistory()
        history.record(0, ["a", "b"])
        history.record(1, ["a", "c"])
        assert history.tenures() == {"a": 2, "b": 1, "c": 1}
        assert history.ever_selected() == {"a", "b", "c"}


class TestTurnover:
    def test_no_turnover(self):
        assert turnover_rate([["a", "b"], ["a", "b"]]) == 0.0

    def test_full_turnover(self):
        assert turnover_rate([["a"], ["b"], ["c"]]) == 1.0

    def test_half_turnover(self):
        assert turnover_rate([["a", "b"], ["a", "c"]]) == pytest.approx(0.5)

    def test_empty_previous_contributes_zero(self):
        assert turnover_rate([[], ["a"]]) == 0.0


class TestModuleFunctions:
    def test_mean_jaccard_stability_short(self):
        assert mean_jaccard_stability([["a"]]) == 1.0
        assert mean_jaccard_stability([]) == 1.0

    def test_node_tenures_dedupes_within_step(self):
        assert node_tenures([["a", "a"], ["a"]]) == {"a": 2}


class TestWithTracker:
    def test_smooth_decay_is_more_stable_than_hard_window(self):
        """Example 1 quantified: with evidence that decays smoothly (long
        geometric lifetimes) the tracked set churns less than with a short
        hard window, on the same interaction sequence."""
        from repro.core.tracker import InfluenceTracker
        from repro.tdn.lifetimes import ConstantLifetime

        def run(policy):
            tracker = InfluenceTracker(
                "hist-approx", k=2, epsilon=0.2, lifetime_policy=policy
            )
            history = SolutionHistory()
            # A stable influencer with bursty activity plus noise.
            for t in range(30):
                batch = [("noise%d" % t, "x%d" % t)]
                if t % 6 == 0:
                    batch += [("star", f"f{t}"), ("star", f"g{t}")]
                solution = tracker.step(t, batch)
                history.record(t, solution.nodes)
            return history

        smooth = run(ConstantLifetime(18))  # long-lived evidence
        hard = run(ConstantLifetime(3))     # short hard window
        assert smooth.mean_stability() >= hard.mean_stability()
        assert smooth.tenures().get("star", 0) >= hard.tenures().get("star", 0)
