"""Unit tests for TDN snapshot statistics."""

import math

import pytest

from repro.analysis.graph_stats import degree_concentration, snapshot_stats
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


class TestSnapshotStats:
    def test_empty_graph(self):
        stats = snapshot_stats(TDNGraph())
        assert stats.num_nodes == 0
        assert stats.num_edges == 0
        assert stats.mean_remaining_lifetime == 0.0
        assert stats.max_out_degree == 0

    def test_basic_counts(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 4))
        graph.add_interaction(Interaction("a", "c", 0, 2))
        graph.add_interaction(Interaction("a", "b", 0, 6))
        stats = snapshot_stats(graph)
        assert stats.num_nodes == 3
        assert stats.num_edges == 3
        assert stats.num_pairs == 2
        assert stats.max_out_degree == 2
        # Per-pair max expiries: a->b 6, a->c 2 -> remaining (6, 2), mean 4.
        assert stats.mean_remaining_lifetime == pytest.approx(4.0)

    def test_remaining_lifetime_tracks_clock(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 10))
        graph.advance_to(4)
        assert snapshot_stats(graph).mean_remaining_lifetime == pytest.approx(6.0)

    def test_infinite_only_graph(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0))
        assert snapshot_stats(graph).mean_remaining_lifetime == math.inf

    def test_mixed_lifetimes_ignore_infinite_in_mean(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0))
        graph.add_interaction(Interaction("c", "d", 0, 8))
        assert snapshot_stats(graph).mean_remaining_lifetime == pytest.approx(8.0)


class TestDegreeConcentration:
    def test_uniform(self):
        # 10 nodes, equal degree: top 10% (1 node) owns 10%.
        assert degree_concentration([5] * 10) == pytest.approx(0.1)

    def test_single_hub(self):
        assert degree_concentration([100, 1, 1, 1, 1, 1, 1, 1, 1, 1]) > 0.9

    def test_empty(self):
        assert degree_concentration([]) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            degree_concentration([1], top_fraction=0.0)

    def test_zipf_generator_is_concentrated(self):
        """The synthetic LBSN generator must produce heavy-tailed degrees
        (the property the paper's datasets share)."""
        from repro.datasets.synthetic import lbsn_stream
        from repro.tdn.graph import TDNGraph

        graph = TDNGraph()
        for event in lbsn_stream(300, 200, 2_000, seed=3):
            graph.add_interaction(
                Interaction(event.source, event.target, 0)
            )
        stats = snapshot_stats(graph)
        assert stats.degree_concentration > 0.3
