"""Tests for the dataset registry, loaders, and one-mode projection."""

import pytest

from repro.datasets.loaders import load_snap_edges, save_snap_edges
from repro.datasets.projection import one_mode_projection
from repro.datasets.registry import (
    DATASETS,
    dataset_names,
    make_interactions,
    make_stream,
    table1_rows,
)
from repro.tdn.interaction import Interaction


class TestRegistry:
    def test_six_paper_datasets(self):
        assert dataset_names() == [
            "brightkite",
            "gowalla",
            "twitter-higgs",
            "twitter-hk",
            "stackoverflow-c2q",
            "stackoverflow-c2a",
        ]

    def test_paper_metadata_matches_table1(self):
        assert DATASETS["brightkite"].paper_interactions == 4_747_281
        assert DATASETS["stackoverflow-c2a"].paper_interactions == 17_535_031
        assert "304,198" == DATASETS["twitter-higgs"].paper_nodes

    @pytest.mark.parametrize("name", dataset_names())
    def test_every_generator_runs(self, name):
        events = make_interactions(name, 200, seed=0)
        assert len(events) == 200
        assert all(e.source != e.target for e in events)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            make_interactions("friendster", 10)

    def test_make_stream_is_replayable(self):
        stream = make_stream("twitter-hk", 50, seed=1)
        assert list(stream) == list(stream)

    def test_table1_rows_with_generation(self):
        rows = table1_rows(num_events=100, seed=0)
        assert len(rows) == 6
        for row in rows:
            assert row["generated_interactions"] == 100
            assert row["generated_nodes"] > 0

    def test_table1_rows_metadata_only(self):
        rows = table1_rows()
        assert "generated_nodes" not in rows[0]


class TestSnapLoaders:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "edges.txt"
        events = [Interaction("a", "b", 0), Interaction("b", "c", 1)]
        assert save_snap_edges(path, events) == 2
        loaded = load_snap_edges(path)
        assert [(e.source, e.target, e.time) for e in loaded] == [
            ("a", "b", 0),
            ("b", "c", 1),
        ]

    def test_compress_time(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("a b 1000\nb c 5000\nc d 5000\n")
        loaded = load_snap_edges(path, compress_time=True)
        assert [e.time for e in loaded] == [0, 1, 1]

    def test_raw_time(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("a b 10\nb c 20\n")
        loaded = load_snap_edges(path, compress_time=False)
        assert [e.time for e in loaded] == [10, 20]

    def test_sorts_by_timestamp(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("a b 50\nb c 10\n")
        loaded = load_snap_edges(path)
        assert [(e.source, e.target) for e in loaded] == [("b", "c"), ("a", "b")]

    def test_comments_and_self_loops_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# header\na a 1\na b 2\n")
        loaded = load_snap_edges(path)
        assert len(loaded) == 1

    def test_max_rows(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("a b 1\nb c 2\nc d 3\n")
        assert len(load_snap_edges(path, max_rows=2)) == 2

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("lonely\n")
        with pytest.raises(ValueError, match="expected"):
            load_snap_edges(path)

    def test_missing_timestamps_use_row_index(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("a b\nb c\n")
        loaded = load_snap_edges(path)
        assert [e.time for e in loaded] == [0, 1]


class TestOneModeProjection:
    def test_paper_example_2(self):
        """u bought a T-shirt; v bought the same two days later: <u, v, t>."""
        events = [("u", "tshirt", 0), ("v", "tshirt", 2)]
        projected = one_mode_projection(events, window=7)
        assert [(i.source, i.target, i.time) for i in projected] == [("u", "v", 2)]

    def test_window_excludes_old_adopters(self):
        events = [("u", "item", 0), ("v", "item", 20)]
        assert one_mode_projection(events, window=7) == []

    def test_max_links_caps_fanin(self):
        events = [(f"u{i}", "item", i) for i in range(5)] + [("late", "item", 5)]
        projected = one_mode_projection(events, window=100, max_links=2)
        incoming = [i for i in projected if i.target == "late"]
        assert len(incoming) == 2
        # Most recent adopters linked first.
        assert {i.source for i in incoming} == {"u4", "u3"}

    def test_different_items_independent(self):
        events = [("u", "a", 0), ("v", "b", 1)]
        assert one_mode_projection(events) == []

    def test_readoption_does_not_self_link(self):
        events = [("u", "item", 0), ("u", "item", 1), ("v", "item", 2)]
        projected = one_mode_projection(events, window=10, max_links=5)
        assert all(i.source != i.target for i in projected)

    def test_non_chronological_rejected(self):
        with pytest.raises(ValueError, match="chronological"):
            one_mode_projection([("u", "i", 5), ("v", "i", 1)])

    def test_projection_feeds_tracker(self):
        """End-to-end: projected interactions drive the tracker."""
        from repro.core.tracker import InfluenceTracker

        events = [("trendsetter", "gadget", 0)]
        events += [(f"follower{i}", "gadget", 1) for i in range(4)]
        projected = one_mode_projection(events, window=5, max_links=10)
        tracker = InfluenceTracker("sieve-adn", k=1, epsilon=0.2)
        tracker.step(1, projected)
        assert tracker.query().nodes == ("trendsetter",)
