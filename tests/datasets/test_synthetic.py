"""Tests for the synthetic stream generators."""

from collections import Counter

import pytest

from repro.datasets.synthetic import lbsn_stream, qa_stream, retweet_stream


class TestLbsnStream:
    def test_event_count_and_chronology(self):
        events = lbsn_stream(50, 40, 300, seed=1)
        assert len(events) == 300
        assert [e.time for e in events] == sorted(e.time for e in events)

    def test_bipartite_direction(self):
        events = lbsn_stream(50, 40, 200, seed=2)
        assert all(e.source.startswith("p") for e in events)
        assert all(e.target.startswith("u") for e in events)

    def test_popularity_is_heavy_tailed(self):
        events = lbsn_stream(200, 100, 5_000, zipf_exponent=1.2, seed=3)
        counts = Counter(e.source for e in events)
        top_share = sum(c for _, c in counts.most_common(10)) / len(events)
        assert top_share > 0.25  # top-10 places dominate

    def test_one_event_per_step_default(self):
        events = lbsn_stream(20, 20, 100, seed=4)
        assert [e.time for e in events] == list(range(100))

    def test_events_per_step_batches(self):
        events = lbsn_stream(20, 20, 100, events_per_step=10, seed=5)
        times = Counter(e.time for e in events)
        assert set(times.values()) == {10}
        assert max(times) == 9

    def test_drift_changes_popular_places(self):
        events = lbsn_stream(
            100, 50, 4_000, drift_interval=200, drift_fraction=0.5, seed=6
        )
        early = Counter(e.source for e in events[:1_000])
        late = Counter(e.source for e in events[-1_000:])
        top_early = {p for p, _ in early.most_common(5)}
        top_late = {p for p, _ in late.most_common(5)}
        assert top_early != top_late  # popularity drifted

    def test_deterministic_by_seed(self):
        assert lbsn_stream(20, 20, 50, seed=9) == lbsn_stream(20, 20, 50, seed=9)
        assert lbsn_stream(20, 20, 50, seed=9) != lbsn_stream(20, 20, 50, seed=10)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            lbsn_stream(0, 10, 10)
        with pytest.raises(ValueError):
            lbsn_stream(10, 10, 10, drift_fraction=1.5)


class TestRetweetStream:
    def test_no_self_retweets(self):
        events = retweet_stream(30, 500, seed=1)
        assert all(e.source != e.target for e in events)

    def test_burst_shifts_attention(self):
        """During a burst, a small author set must dominate arrivals."""
        events = retweet_stream(
            200, 3_000, burst_interval=1_000, burst_length=300,
            burst_boost=50.0, seed=2,
        )
        in_burst = [e for e in events if 1_000 <= e.time < 1_300]
        counts = Counter(e.source for e in in_burst)
        top_share = sum(c for _, c in counts.most_common(4)) / max(len(in_burst), 1)
        assert top_share > 0.5

    def test_cascade_probability_zero_allowed(self):
        events = retweet_stream(20, 100, cascade_probability=0.0, seed=3)
        assert len(events) == 100

    def test_deterministic_by_seed(self):
        assert retweet_stream(20, 50, seed=4) == retweet_stream(20, 50, seed=4)


class TestQaStream:
    def test_epoch_turnover(self):
        """Hot authors must change across epochs (topical churn)."""
        events = qa_stream(300, 2_000, epoch_length=500, hot_fraction=0.03, seed=1)
        epoch1 = Counter(e.source for e in events[:500])
        epoch3 = Counter(e.source for e in events[1_000:1_500])
        top1 = {a for a, _ in epoch1.most_common(5)}
        top3 = {a for a, _ in epoch3.most_common(5)}
        assert top1 != top3

    def test_no_self_comments(self):
        events = qa_stream(30, 300, seed=2)
        assert all(e.source != e.target for e in events)

    def test_event_count(self):
        assert len(qa_stream(30, 123, seed=3)) == 123
