"""Unit tests for the CI perf-trajectory assembler."""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "assemble_trajectory", REPO_ROOT / "benchmarks" / "assemble_trajectory.py"
)
assemble_trajectory = importlib.util.module_from_spec(spec)
spec.loader.exec_module(assemble_trajectory)


def write_export(path, names_to_median, extra_info=None):
    payload = {
        "benchmarks": [
            {
                "name": name,
                "stats": {"median": median},
                "extra_info": extra_info or {},
            }
            for name, median in names_to_median.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return path


class TestAssemble:
    def test_folds_per_source_medians_per_benchmark(self, tmp_path):
        write_export(tmp_path / "BENCH_pr1_micro.json", {"a": 1.0, "b": 2.0})
        write_export(
            tmp_path / "BENCH_pr2_micro.json", {"a": 0.5}, {"speedup": 4.0}
        )
        document = assemble_trajectory.assemble(
            [tmp_path / "BENCH_pr2_micro.json", tmp_path / "BENCH_pr1_micro.json"]
        )
        assert document["sources"] == ["pr1_micro", "pr2_micro"]  # label-sorted
        assert [row["median_seconds"] for row in document["benchmarks"]["a"]] == [
            1.0,
            0.5,
        ]
        assert document["benchmarks"]["a"][1]["extra_info"] == {"speedup": 4.0}
        assert [row["source"] for row in document["benchmarks"]["b"]] == ["pr1_micro"]

    def test_sources_sort_naturally_past_single_digits(self, tmp_path):
        for label in ("pr10", "pr2", "pr1"):
            write_export(tmp_path / f"BENCH_{label}_micro.json", {"a": 1.0})
        document = assemble_trajectory.assemble(list(tmp_path.glob("BENCH_*.json")))
        assert document["sources"] == ["pr1_micro", "pr2_micro", "pr10_micro"]

    def test_rejects_non_benchmark_json(self, tmp_path):
        bogus = tmp_path / "BENCH_bogus.json"
        bogus.write_text(json.dumps({"totally": "unrelated"}))
        with pytest.raises(ValueError, match="pytest-benchmark"):
            assemble_trajectory.assemble([bogus])

    def test_rejects_empty_input_list(self):
        with pytest.raises(ValueError, match="no benchmark exports"):
            assemble_trajectory.assemble([])

    def test_checked_in_snapshots_assemble(self):
        """The real benchmarks/results series must stay loadable."""
        snapshots = sorted((REPO_ROOT / "benchmarks" / "results").glob("BENCH_*.json"))
        assert snapshots, "benchmarks/results should hold per-PR snapshots"
        document = assemble_trajectory.assemble(snapshots)
        assert len(document["sources"]) == len(snapshots)
        assert document["benchmarks"]


class TestCli:
    def test_writes_output_document(self, tmp_path, capsys):
        export = write_export(tmp_path / "BENCH_x.json", {"a": 1.5})
        output = tmp_path / "TRAJECTORY.json"
        rc = assemble_trajectory.main([str(export), "--output", str(output)])
        assert rc == 0
        document = json.loads(output.read_text())
        assert document["format_version"] == 1
        assert document["benchmarks"]["a"][0]["median_seconds"] == 1.5
        assert "wrote" in capsys.readouterr().out

    def test_missing_input_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            assemble_trajectory.main([str(tmp_path / "BENCH_absent.json")])
