"""Equivalence tests for the SCC-based batch spread engine."""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.influence.fast_spread import (
    all_singleton_spreads,
    strongly_connected_components,
    top_spreaders,
)
from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction

NODES = [f"n{i}" for i in range(8)]


def random_graph(rng, num_edges=14, max_lifetime=9):
    graph = TDNGraph()
    for _ in range(num_edges):
        u, v = rng.sample(range(len(NODES)), 2)
        graph.add_interaction(
            Interaction(NODES[u], NODES[v], 0, rng.randint(1, max_lifetime))
        )
    return graph


class TestSCC:
    def test_chain_components_singletons(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 9))
        graph.add_interaction(Interaction("b", "c", 0, 9))
        components = strongly_connected_components(graph)
        assert sorted(len(c) for c in components) == [1, 1, 1]

    def test_cycle_collapses(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 9))
        graph.add_interaction(Interaction("b", "c", 0, 9))
        graph.add_interaction(Interaction("c", "a", 0, 9))
        components = strongly_connected_components(graph)
        assert len(components) == 1
        assert sorted(components[0]) == ["a", "b", "c"]

    def test_reverse_topological_order(self):
        """Each condensation edge points to an earlier-listed component."""
        rng = random.Random(3)
        for _ in range(20):
            graph = random_graph(rng)
            components = strongly_connected_components(graph)
            position = {}
            for i, members in enumerate(components):
                for m in members:
                    position[m] = i
            for u, v in graph.alive_pairs():
                if position[u] != position[v]:
                    assert position[v] < position[u]

    def test_empty_graph(self):
        assert strongly_connected_components(TDNGraph()) == []

    def test_deep_chain_no_recursion_limit(self):
        """A 5000-node chain would blow Python's recursion limit if Tarjan
        were recursive."""
        graph = TDNGraph()
        for i in range(5_000):
            graph.add_interaction(Interaction(i, i + 1, 0, 9))
        components = strongly_connected_components(graph)
        assert len(components) == 5_001


class TestAllSingletonSpreads:
    def test_matches_oracle_on_random_graphs(self):
        rng = random.Random(11)
        for _ in range(25):
            graph = random_graph(rng)
            oracle = InfluenceOracle(graph)
            fast = all_singleton_spreads(graph)
            assert set(fast) == graph.node_set()
            for node in graph.node_set():
                assert fast[node] == oracle.spread([node]), node

    def test_respects_horizon(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        graph.add_interaction(Interaction("a", "c", 0, 9))
        fast = all_singleton_spreads(graph, min_expiry=5)
        assert fast["a"] == 2  # only a->c visible

    def test_cycles_share_spread(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 9))
        graph.add_interaction(Interaction("b", "a", 0, 9))
        graph.add_interaction(Interaction("b", "c", 0, 9))
        fast = all_singleton_spreads(graph)
        assert fast["a"] == fast["b"] == 3

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_property_equivalence(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, num_edges=rng.randint(1, 20))
        oracle = InfluenceOracle(graph)
        fast = all_singleton_spreads(graph)
        for node in graph.node_set():
            assert fast[node] == oracle.spread([node])


class TestTopSpreaders:
    def test_ranks_hub_first(self):
        graph = TDNGraph()
        for i in range(5):
            graph.add_interaction(Interaction("hub", f"x{i}", 0, 9))
        graph.add_interaction(Interaction("minor", "y", 0, 9))
        assert top_spreaders(graph, 1) == ["hub"]

    def test_count_zero(self):
        assert top_spreaders(TDNGraph(), 0) == []

    def test_negative_count(self):
        with pytest.raises(ValueError):
            top_spreaders(TDNGraph(), -1)

    def test_deterministic_tiebreak(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "x", 0, 9))
        graph.add_interaction(Interaction("b", "y", 0, 9))
        assert top_spreaders(graph, 2) == ["a", "b"]
