"""Unit tests for the interaction-count -> IC probability mapping."""

import math

import pytest

from repro.influence.probabilities import (
    WeightedGraphSnapshot,
    interactions_to_probability,
)
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


class TestProbabilityMapping:
    def test_zero_count_is_zero(self):
        assert interactions_to_probability(0) == 0.0

    def test_paper_formula(self):
        # p = 2 / (1 + exp(-0.2 x)) - 1 (paper Section V-C).
        for x in (1, 3, 10):
            expected = 2.0 / (1.0 + math.exp(-0.2 * x)) - 1.0
            assert interactions_to_probability(x) == pytest.approx(expected)

    def test_monotone_in_count(self):
        values = [interactions_to_probability(x) for x in range(0, 30)]
        assert values == sorted(values)

    def test_saturates_at_one(self):
        # Mathematically p < 1 for finite counts, but the exponential
        # underflows for huge counts and the value saturates at exactly 1.0.
        assert interactions_to_probability(50) < 1.0
        assert interactions_to_probability(10_000) <= 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            interactions_to_probability(-1)


class TestWeightedGraphSnapshot:
    def make_graph(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 9))
        graph.add_interaction(Interaction("a", "b", 0, 9))
        graph.add_interaction(Interaction("b", "c", 0, 9))
        return graph

    def test_counts_become_probabilities(self):
        snapshot = WeightedGraphSnapshot(self.make_graph())
        assert snapshot.probability("a", "b") == pytest.approx(
            interactions_to_probability(2)
        )
        assert snapshot.probability("b", "c") == pytest.approx(
            interactions_to_probability(1)
        )

    def test_missing_edge_probability_zero(self):
        snapshot = WeightedGraphSnapshot(self.make_graph())
        assert snapshot.probability("c", "a") == 0.0
        assert snapshot.probability("a", "ghost") == 0.0

    def test_dense_indexing_round_trip(self):
        snapshot = WeightedGraphSnapshot(self.make_graph())
        assert snapshot.num_nodes == 3
        for label in ("a", "b", "c"):
            assert snapshot.labels[snapshot.index[label]] == label
        assert snapshot.to_labels([snapshot.index["b"]]) == ["b"]

    def test_in_and_out_adjacency_consistent(self):
        snapshot = WeightedGraphSnapshot(self.make_graph())
        out_edges = {(u, v) for u, v, _ in snapshot.edges()}
        assert out_edges == {("a", "b"), ("b", "c")}
        b = snapshot.index["b"]
        assert [snapshot.labels[u] for u, _ in snapshot.in_adj[b]] == ["a"]

    def test_snapshot_ignores_expired(self):
        graph = self.make_graph()
        graph.add_interaction(Interaction("c", "d", 0, 1))
        graph.advance_to(1)
        snapshot = WeightedGraphSnapshot(graph)
        assert snapshot.probability("c", "d") == 0.0
        assert "d" not in snapshot.index

    def test_empty_graph(self):
        snapshot = WeightedGraphSnapshot(TDNGraph())
        assert snapshot.num_nodes == 0
        assert snapshot.num_edges == 0
