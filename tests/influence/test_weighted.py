"""Tests for the weighted influence objective (the paper's f_t hook)."""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.hist_approx import HistApprox
from repro.influence.oracle import InfluenceOracle
from repro.influence.weighted import WeightedInfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction

NODES = [f"n{i}" for i in range(6)]


def star_graph():
    graph = TDNGraph()
    for i in range(3):
        graph.add_interaction(Interaction("hub", f"leaf{i}", 0, 9))
    return graph


class TestBasics:
    def test_unit_weights_match_unweighted_oracle(self):
        graph = star_graph()
        weighted = WeightedInfluenceOracle(graph)
        plain = InfluenceOracle(graph)
        for seeds in (["hub"], ["leaf0"], ["hub", "leaf1"]):
            assert weighted.spread(seeds) == plain.spread(seeds)

    def test_mapping_weights(self):
        graph = star_graph()
        oracle = WeightedInfluenceOracle(graph, {"leaf0": 10.0}, default_weight=1.0)
        # hub reaches hub(1) + leaf0(10) + leaf1(1) + leaf2(1) = 13.
        assert oracle.spread(["hub"]) == 13.0

    def test_callable_weights(self):
        graph = star_graph()
        oracle = WeightedInfluenceOracle(
            graph, lambda n: 5.0 if str(n).startswith("leaf") else 0.0
        )
        assert oracle.spread(["hub"]) == 15.0

    def test_zero_weight_excludes_value(self):
        graph = star_graph()
        oracle = WeightedInfluenceOracle(graph, {"hub": 0.0})
        assert oracle.spread(["hub"]) == 3.0

    def test_empty_set_normalized(self):
        oracle = WeightedInfluenceOracle(star_graph())
        assert oracle.spread([]) == 0.0
        assert oracle.calls == 0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            WeightedInfluenceOracle(star_graph(), {"hub": -1.0})
        with pytest.raises(ValueError):
            WeightedInfluenceOracle(star_graph(), default_weight=-2.0)

    def test_caching_and_counting(self):
        oracle = WeightedInfluenceOracle(star_graph(), {"leaf0": 2.0})
        oracle.spread(["hub"])
        oracle.spread(["hub"])
        assert oracle.calls == 1

    def test_marginal_gain(self):
        graph = star_graph()
        graph.add_interaction(Interaction("solo", "other", 0, 9))
        oracle = WeightedInfluenceOracle(graph, {"other": 7.0})
        assert oracle.marginal_gain(["hub"], "solo") == 8.0
        assert oracle.marginal_gain(["hub"], "hub") == 0.0


class TestBackends:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            WeightedInfluenceOracle(star_graph(), backend="sparse")

    def test_csr_and_dict_backends_agree_on_random_streams(self):
        rng = random.Random(31)
        graph = TDNGraph()
        graph.csr()  # live engine: spreads run on base + overlay
        t = 0
        weights = {f"n{i}": rng.uniform(0.0, 9.0) for i in range(12)}
        csr = WeightedInfluenceOracle(graph, weights, backend="csr")
        ref = WeightedInfluenceOracle(graph, weights, backend="dict")
        for _ in range(100):
            if rng.random() < 0.2:
                t += rng.randint(1, 3)
                graph.advance_to(t)
            u, v = rng.sample(range(12), 2)
            graph.add_interaction(Interaction(f"n{u}", f"n{v}", t, rng.randint(1, 10)))
            seeds = [f"n{i}" for i in rng.sample(range(12), rng.randint(1, 3))]
            for horizon in (None, t + 2):
                assert csr.spread(seeds, horizon) == pytest.approx(
                    ref.spread(seeds, horizon)
                )
        assert csr.calls == ref.calls

    def test_csr_path_handles_uninterned_seeds(self):
        graph = star_graph()
        oracle = WeightedInfluenceOracle(graph, {"ghost": 4.0}, backend="csr")
        # "ghost" was never interned: it reaches only itself.
        assert oracle.spread(["ghost"]) == 4.0
        assert oracle.spread(["ghost", "hub"]) == 8.0  # 4 + hub's 4 unit reach

    def test_csr_path_rejects_negative_callable_weight(self):
        graph = star_graph()
        oracle = WeightedInfluenceOracle(
            graph, lambda n: -1.0 if n == "leaf2" else 1.0, backend="csr"
        )
        with pytest.raises(ValueError, match="negative"):
            oracle.spread(["hub"])


class TestSubmodularityProperties:
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        small=st.sets(st.sampled_from(NODES), max_size=2),
        extra=st.sets(st.sampled_from(NODES), max_size=2),
        candidate=st.sampled_from(NODES),
    )
    @settings(max_examples=60, deadline=None)
    def test_weighted_spread_monotone_submodular(self, seed, small, extra, candidate):
        """Theorem 1 must hold for the weighted objective too."""
        rng = random.Random(seed)
        graph = TDNGraph()
        for _ in range(rng.randint(1, 12)):
            u, v = rng.sample(range(len(NODES)), 2)
            graph.add_interaction(Interaction(NODES[u], NODES[v], 0, rng.randint(1, 9)))
        weights = {node: rng.uniform(0.0, 5.0) for node in NODES}
        oracle = WeightedInfluenceOracle(graph, weights)
        large = small | extra
        # Monotone.
        assert oracle.spread(large | {candidate}) >= oracle.spread(large) - 1e-12
        # Submodular.
        gain_small = oracle.spread(small | {candidate}) - oracle.spread(small)
        gain_large = oracle.spread(large | {candidate}) - oracle.spread(large)
        assert gain_small >= gain_large - 1e-9


class TestTrackersWithWeightedObjective:
    def test_hist_approx_chases_weighted_value(self):
        """With a huge weight on one target, the tracker must prefer the
        otherwise-minor influencer that reaches it."""
        graph = TDNGraph()
        oracle = WeightedInfluenceOracle(graph, {"vip": 100.0})
        hist = HistApprox(1, 0.2, graph, oracle)
        batch = [Interaction("popular", f"x{i}", 0, 9) for i in range(5)]
        batch.append(Interaction("minor", "vip", 0, 9))
        graph.add_batch(batch)
        hist.on_batch(0, batch)
        assert hist.query().nodes == ("minor",)
        assert hist.query().value == 101.0

    def test_unit_weighted_tracker_matches_plain(self):
        rng = random.Random(5)
        events = []
        for t in range(8):
            for _ in range(rng.randint(1, 3)):
                u, v = rng.sample(range(len(NODES)), 2)
                events.append(Interaction(NODES[u], NODES[v], t, rng.randint(1, 6)))
        graph_a, graph_b = TDNGraph(), TDNGraph()
        plain = HistApprox(2, 0.2, graph_a)
        weighted = HistApprox(2, 0.2, graph_b, WeightedInfluenceOracle(graph_b))
        by_time = {}
        for e in events:
            by_time.setdefault(e.time, []).append(e)
        for t in sorted(by_time):
            for graph, algo in ((graph_a, plain), (graph_b, weighted)):
                graph.advance_to(t)
                graph.add_batch(by_time[t])
                algo.on_batch(t, by_time[t])
        assert plain.query().value == weighted.query().value
        assert plain.query().nodes == weighted.query().nodes
