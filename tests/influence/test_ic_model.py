"""Unit and statistical tests for the IC diffusion model."""

import pytest

from repro.influence.ic_model import estimate_spread_mc, simulate_ic
from repro.influence.probabilities import WeightedGraphSnapshot
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


def deterministic_snapshot():
    """Edge probabilities ~1 (many parallel interactions) along a chain."""
    graph = TDNGraph()
    for _ in range(60):  # p ~ 1 - 1e-5
        graph.add_interaction(Interaction("a", "b", 0, 9))
        graph.add_interaction(Interaction("b", "c", 0, 9))
    return WeightedGraphSnapshot(graph)


def sparse_snapshot():
    graph = TDNGraph()
    graph.add_interaction(Interaction("a", "b", 0, 9))
    return WeightedGraphSnapshot(graph)


class TestSimulateIC:
    def test_seeds_always_active(self):
        activated = simulate_ic(sparse_snapshot(), ["a"], rng=1)
        assert "a" in activated

    def test_near_deterministic_chain_activates_fully(self):
        activated = simulate_ic(deterministic_snapshot(), ["a"], rng=1)
        assert activated == {"a", "b", "c"}

    def test_missing_seed_counts_but_does_not_spread(self):
        activated = simulate_ic(sparse_snapshot(), ["ghost"], rng=1)
        assert activated == {"ghost"}

    def test_no_seeds(self):
        assert simulate_ic(sparse_snapshot(), [], rng=1) == set()

    def test_activation_probability_statistical(self):
        # Single edge with p = interactions_to_probability(1) ~ 0.0997.
        from repro.influence.probabilities import interactions_to_probability

        snapshot = sparse_snapshot()
        p = interactions_to_probability(1)
        import random

        rng = random.Random(7)
        hits = sum(
            1 for _ in range(20_000) if "b" in simulate_ic(snapshot, ["a"], rng=rng)
        )
        assert hits / 20_000 == pytest.approx(p, abs=0.01)


class TestEstimateSpreadMC:
    def test_matches_closed_form_single_edge(self):
        from repro.influence.probabilities import interactions_to_probability

        snapshot = sparse_snapshot()
        p = interactions_to_probability(1)
        estimate = estimate_spread_mc(snapshot, ["a"], num_simulations=20_000, rng=3)
        assert estimate == pytest.approx(1.0 + p, abs=0.02)

    def test_monotone_in_seeds(self):
        snapshot = deterministic_snapshot()
        single = estimate_spread_mc(snapshot, ["b"], num_simulations=500, rng=5)
        double = estimate_spread_mc(snapshot, ["a", "b"], num_simulations=500, rng=5)
        assert double >= single

    def test_invalid_simulation_count(self):
        with pytest.raises(ValueError):
            estimate_spread_mc(sparse_snapshot(), ["a"], num_simulations=0)
