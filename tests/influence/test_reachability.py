"""Unit tests for horizon-filtered reachability."""

from repro.influence.reachability import ancestors, reachable_set
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


def chain_graph():
    """a -> b -> c -> d with expiries 10, 5, 2."""
    graph = TDNGraph()
    graph.add_interaction(Interaction("a", "b", 0, 10))
    graph.add_interaction(Interaction("b", "c", 0, 5))
    graph.add_interaction(Interaction("c", "d", 0, 2))
    return graph


class TestReachableSet:
    def test_includes_sources(self):
        graph = chain_graph()
        assert "a" in reachable_set(graph, ["a"])

    def test_full_chain(self):
        graph = chain_graph()
        assert reachable_set(graph, ["a"]) == {"a", "b", "c", "d"}

    def test_mid_chain(self):
        graph = chain_graph()
        assert reachable_set(graph, ["c"]) == {"c", "d"}

    def test_multiple_sources_union(self):
        graph = chain_graph()
        graph.add_interaction(Interaction("x", "y", 0, 10))
        assert reachable_set(graph, ["c", "x"]) == {"c", "d", "x", "y"}

    def test_horizon_cuts_short_edges(self):
        graph = chain_graph()
        # Horizon 3: only edges with expiry >= 3 traversable (a->b, b->c).
        assert reachable_set(graph, ["a"], min_expiry=3) == {"a", "b", "c"}
        # Horizon 6: only a->b.
        assert reachable_set(graph, ["a"], min_expiry=6) == {"a", "b"}

    def test_absent_source_counts_itself(self):
        graph = chain_graph()
        assert reachable_set(graph, ["ghost"]) == {"ghost"}

    def test_empty_sources(self):
        assert reachable_set(chain_graph(), []) == set()

    def test_cycle_terminates(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 5))
        graph.add_interaction(Interaction("b", "a", 0, 5))
        assert reachable_set(graph, ["a"]) == {"a", "b"}

    def test_duplicated_sources(self):
        graph = chain_graph()
        assert reachable_set(graph, ["a", "a"]) == {"a", "b", "c", "d"}


class TestAncestors:
    def test_includes_targets(self):
        graph = chain_graph()
        assert "d" in ancestors(graph, ["d"])

    def test_full_chain_backwards(self):
        graph = chain_graph()
        assert ancestors(graph, ["d"]) == {"a", "b", "c", "d"}

    def test_horizon_filter(self):
        graph = chain_graph()
        # Horizon 3: the c->d edge (expiry 2) is invisible, so d's only
        # ancestor is itself.
        assert ancestors(graph, ["d"], min_expiry=3) == {"d"}
        assert ancestors(graph, ["c"], min_expiry=3) == {"a", "b", "c"}

    def test_duality_with_reachability(self):
        graph = chain_graph()
        for node in ("a", "b", "c", "d"):
            for other in ("a", "b", "c", "d"):
                forward = other in reachable_set(graph, [node])
                backward = node in ancestors(graph, [other])
                assert forward == backward
