"""Delta-aware memo semantics: dirty-cone eviction, FIFO order, equivalence.

The oracle's memo table now survives graph version bumps: under
``memo_mode="delta"`` only entries whose key-set intersects the ancestor
closure of the journaled dirty sources are evicted, while
``memo_mode="version"`` reproduces the historical wholesale clear.  These
tests pin the contract from three sides:

* *retention*: entries whose reachable cone no delta touched stay hot
  across arrivals and expiries (no re-counted oracle call), on both
  backends and for the weighted oracle;
* *soundness*: any entry retained across a batch equals a from-scratch
  evaluation (a hypothesis property over random add/advance streams);
* *equivalence*: both memo modes produce identical solutions and spread
  values on replayed tracker streams, with the delta mode never spending
  more calls at default capacity, and FIFO capacity eviction order is
  preserved by dirty-cone deletes.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basic_reduction import BasicReduction
from repro.core.hist_approx import HistApprox
from repro.core.sieve_adn import SieveADN
from repro.influence.changed import changed_nodes
from repro.influence.oracle import MEMO_MODES, InfluenceOracle, MemoTable
from repro.influence.weighted import WeightedInfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.tdn.stream import MemoryStream
from repro.utils.counters import CallCounter


def two_island_graph():
    """Two disconnected chains: a -> b -> c and x -> y."""
    graph = TDNGraph()
    graph.add_interaction(Interaction("a", "b", 0, 50))
    graph.add_interaction(Interaction("b", "c", 0, 50))
    graph.add_interaction(Interaction("x", "y", 0, 50))
    return graph


class TestMemoModeConfig:
    def test_invalid_memo_mode_rejected(self):
        with pytest.raises(ValueError, match="memo_mode"):
            InfluenceOracle(TDNGraph(), memo_mode="eager")
        with pytest.raises(ValueError, match="memo_mode"):
            WeightedInfluenceOracle(TDNGraph(), memo_mode="eager")

    def test_modes_exposed(self):
        assert MEMO_MODES == ("delta", "version")
        assert InfluenceOracle(TDNGraph()).memo_mode == "delta"
        oracle = InfluenceOracle(TDNGraph(), memo_mode="version")
        assert oracle.memo_mode == "version"


class TestDeltaRetention:
    @pytest.mark.parametrize("backend", ["csr", "dict"])
    def test_untouched_cone_survives_arrival(self, backend):
        graph = two_island_graph()
        oracle = InfluenceOracle(graph, backend=backend)
        assert oracle.spread(["a"]) == 3
        assert oracle.spread(["x"]) == 2
        assert oracle.calls == 2
        # Arrival inside the x-island: the a-chain's cone is untouched.
        graph.add_interaction(Interaction("x", "z", 0, 50))
        assert oracle.spread(["a"]) == 3  # retained: no new call
        assert oracle.calls == 2
        assert oracle.spread(["x"]) == 3  # evicted: recomputed
        assert oracle.calls == 3

    @pytest.mark.parametrize("backend", ["csr", "dict"])
    def test_ancestors_of_arrival_source_are_evicted(self, backend):
        graph = two_island_graph()
        oracle = InfluenceOracle(graph, backend=backend)
        assert oracle.spread(["a"]) == 3
        # New edge out of c: a reaches c, so a's memo entry must go.
        graph.add_interaction(Interaction("c", "d", 0, 50))
        assert oracle.spread(["a"]) == 4
        assert oracle.calls == 2

    @pytest.mark.parametrize("backend", ["csr", "dict"])
    def test_untouched_cone_survives_expiry(self, backend):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        graph.add_interaction(Interaction("x", "y", 0, 50))
        oracle = InfluenceOracle(graph, backend=backend)
        assert oracle.spread(["a"]) == 2
        assert oracle.spread(["x"]) == 2
        graph.advance_to(5)  # a -> b expires; the x-island is untouched
        assert oracle.spread(["x"]) == 2
        assert oracle.calls == 2  # retained across the expiry
        assert oracle.spread(["a"]) == 1
        assert oracle.calls == 3

    def test_upstream_of_dead_pair_is_evicted(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("r", "s", 0, 50))
        graph.add_interaction(Interaction("s", "t", 0, 2))
        oracle = InfluenceOracle(graph)
        assert oracle.spread(["r"]) == 3
        graph.advance_to(5)  # s -> t dies; r sits upstream of s
        assert oracle.spread(["r"]) == 2
        assert oracle.calls == 2

    def test_non_final_parallel_edge_expiry_retains_everything(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        graph.add_interaction(Interaction("a", "b", 0, 50))
        oracle = InfluenceOracle(graph)
        assert oracle.spread(["a"]) == 2
        graph.advance_to(5)  # one parallel edge expires, the pair lives on
        assert oracle.spread(["a"]) == 2
        assert oracle.calls == 1  # nothing was journaled, nothing evicted

    def test_dict_backend_never_builds_csr_engine(self):
        """Dict oracles close dirty cones via the dict ancestor walk: the
        reference configuration must keep its pure-dict profile and never
        pay a CSR base build just to evict memo entries."""
        graph = two_island_graph()
        oracle = InfluenceOracle(graph, backend="dict")
        sieve = SieveADN(2, 0.2, graph, oracle)
        batch = [Interaction("x", "z", 0, 50)]
        graph.add_batch(batch)
        sieve.on_batch(0, batch)
        assert oracle.spread(["a"]) == 3
        assert graph._delta is None  # noqa: SLF001 - the pinned invariant

    def test_version_mode_clears_wholesale(self):
        graph = two_island_graph()
        oracle = InfluenceOracle(graph, memo_mode="version")
        assert oracle.spread(["a"]) == 3
        assert oracle.spread(["x"]) == 2
        graph.add_interaction(Interaction("x", "z", 0, 50))
        assert oracle.spread(["a"]) == 3  # recomputed despite untouched cone
        assert oracle.spread(["x"]) == 3
        assert oracle.calls == 4

    def test_weighted_oracle_retains_untouched_cone(self):
        graph = two_island_graph()
        oracle = WeightedInfluenceOracle(graph, {"c": 10.0})
        assert oracle.spread(["a"]) == 12.0
        assert oracle.spread(["x"]) == 2.0
        graph.add_interaction(Interaction("x", "z", 0, 50))
        assert oracle.spread(["a"]) == 12.0
        assert oracle.calls == 2  # retained
        assert oracle.spread(["x"]) == 3.0
        assert oracle.calls == 3

    def test_spread_many_sees_retained_entries(self):
        graph = two_island_graph()
        oracle = InfluenceOracle(graph)
        oracle.spread_many([["a"], ["x"]])
        graph.add_interaction(Interaction("x", "z", 0, 50))
        values = oracle.spread_many([["a"], ["x"]])
        assert values == [3, 3]
        assert oracle.calls == 3  # only the x entry re-evaluated


class TestDirtyJournal:
    def test_cursor_monotone_and_suffix_read(self):
        graph = TDNGraph()
        start = graph.dirty_cursor
        graph.add_interaction(Interaction("a", "b", 0, 5))
        graph.add_interaction(Interaction("c", "d", 0, 5))
        assert graph.dirty_cursor == start + 2
        ids = graph.dirty_source_ids_since(start)
        assert ids == {graph.node_id("a"), graph.node_id("c")}
        assert graph.dirty_source_ids_since(graph.dirty_cursor) == set()

    def test_pair_death_journals_source(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        cursor = graph.dirty_cursor
        graph.advance_to(5)
        assert graph.dirty_source_ids_since(cursor) == {graph.node_id("a")}

    def test_trimmed_journal_reports_none(self, monkeypatch):
        monkeypatch.setattr(TDNGraph, "DIRTY_LOG_MAX", 4)
        graph = TDNGraph()
        cursor = graph.dirty_cursor
        for i in range(6):
            graph.add_interaction(Interaction(f"s{i}", f"t{i}", 0, 9))
        assert graph.dirty_source_ids_since(cursor) is None
        # A caught-up cursor keeps working after the trim.
        assert graph.dirty_source_ids_since(graph.dirty_cursor) == set()

    def test_oracle_survives_journal_trim_with_wholesale_clear(self, monkeypatch):
        monkeypatch.setattr(TDNGraph, "DIRTY_LOG_MAX", 4)
        graph = two_island_graph()
        oracle = InfluenceOracle(graph)
        assert oracle.spread(["a"]) == 3
        for i in range(6):  # overflow the journal between syncs
            graph.add_interaction(Interaction(f"f{i}", f"g{i}", 0, 9))
        assert oracle.spread(["a"]) == 3
        assert oracle.calls == 2  # cleared wholesale, recomputed correctly

    def test_touched_cone_ids_closes_seeds_under_ancestors(self):
        graph = two_island_graph()
        engine = graph.csr()
        cone = engine.touched_cone_ids([graph.node_id("c")])
        assert cone == {graph.node_id("a"), graph.node_id("b"), graph.node_id("c")}


class TestFifoOrderAcrossModes:
    """Capacity eviction stays FIFO; dirty deletes never reorder survivors."""

    def test_delta_mode_preserves_fifo_capacity_order(self):
        graph = TDNGraph()
        for leaf in ("b", "c", "d"):
            graph.add_interaction(Interaction("a", leaf, 0, 50))
        graph.add_interaction(Interaction("x", "y", 0, 50))
        oracle = InfluenceOracle(graph, max_cache_entries=3)
        oracle.spread(["b"])  # oldest
        oracle.spread(["c"])
        oracle.spread(["x"])
        # A delta in the x-island evicts only the x entry; b and c survive
        # in their original FIFO positions.
        graph.add_interaction(Interaction("x", "z", 0, 50))
        oracle.spread(["d"])  # table full again: [b, c, d]
        calls = oracle.calls
        oracle.spread(["c"])  # still cached
        assert oracle.calls == calls
        oracle.spread(["x"])  # evicts oldest survivor: b
        oracle.spread(["b"])  # must be a real re-evaluation
        assert oracle.calls == calls + 2

    @pytest.mark.parametrize("memo_mode", MEMO_MODES)
    def test_fifo_order_identical_within_a_version(self, memo_mode):
        graph = TDNGraph()
        for leaf in ("b", "c", "d", "e"):
            graph.add_interaction(Interaction("a", leaf, 0, 50))
        oracle = InfluenceOracle(graph, max_cache_entries=2, memo_mode=memo_mode)
        for seed in ("b", "c", "d"):  # d's insert evicts b
            oracle.spread([seed])
        calls = oracle.calls
        oracle.spread(["d"])
        oracle.spread(["c"])
        assert oracle.calls == calls  # two most recent entries cached
        oracle.spread(["b"])
        assert oracle.calls == calls + 1  # the FIFO-evicted oldest re-counts


class TestMemoTable:
    def test_evict_nodes_returns_eviction_count(self):
        graph = two_island_graph()
        table = MemoTable(graph, 10, "delta")
        table.put((None, frozenset(["a"])), 3)
        table.put((None, frozenset(["a", "x"])), 4)
        table.put((None, frozenset(["x"])), 2)
        assert table.evict_nodes({"a"}) == 2
        assert list(table.data) == [(None, frozenset(["x"]))]
        assert table.evict_nodes({"missing"}) == 0

    def test_zero_capacity_stores_nothing(self):
        graph = two_island_graph()
        table = MemoTable(graph, 0, "delta")
        table.put((None, frozenset(["a"])), 3)
        assert len(table) == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            MemoTable(TDNGraph(), -1, "delta")


def seeded_events(seed, steps=16, num_nodes=8):
    rng = random.Random(seed)
    events = []
    for t in range(steps):
        for _ in range(rng.randint(1, 3)):
            u, v = rng.sample(range(num_nodes), 2)
            lifetime = None if rng.random() < 0.2 else rng.randint(1, 6)
            events.append(Interaction(f"n{u}", f"n{v}", t, lifetime))
    return events


def make_tracker(name, graph, oracle):
    if name == "sieve_adn":
        return SieveADN(2, 0.2, graph, oracle)
    if name == "basic_reduction":
        return BasicReduction(2, 0.2, 6, graph, oracle)
    if name == "hist_approx":
        return HistApprox(2, 0.2, graph, oracle)
    raise AssertionError(name)


def replay(tracker_name, events, memo_mode, backend="csr"):
    graph = TDNGraph()
    counter = CallCounter()
    oracle = InfluenceOracle(graph, counter, backend=backend, memo_mode=memo_mode)
    tracker = make_tracker(tracker_name, graph, oracle)
    solutions = []
    for t, batch in MemoryStream(events, fill_gaps=True):
        graph.advance_to(t)
        graph.add_batch(batch)
        tracker.on_batch(t, batch)
        solutions.append(tracker.query())
    return solutions, counter.total


class TestModeEquivalence:
    """The memo mode changes call counts only — never a value or solution."""

    @pytest.mark.parametrize(
        "tracker_name", ["sieve_adn", "basic_reduction", "hist_approx"]
    )
    @pytest.mark.parametrize("seed", [13, 41])
    def test_identical_solutions_across_memo_modes(self, tracker_name, seed):
        events = [
            e if e.lifetime is not None else Interaction(e.source, e.target, e.time, 6)
            for e in seeded_events(seed)
        ]
        delta_solutions, delta_calls = replay(tracker_name, events, "delta")
        version_solutions, version_calls = replay(tracker_name, events, "version")
        assert delta_solutions == version_solutions
        # At default capacity the delta cache is a superset of the
        # version-mode cache at every step, so it can only save calls.
        assert delta_calls <= version_calls
        assert version_calls > 0

    @pytest.mark.parametrize("seed", [13, 41])
    def test_backends_agree_under_delta_mode(self, seed):
        events = seeded_events(seed)
        csr_solutions, csr_calls = replay("sieve_adn", events, "delta", "csr")
        dict_solutions, dict_calls = replay("sieve_adn", events, "delta", "dict")
        assert csr_solutions == dict_solutions
        assert csr_calls == dict_calls

    def test_delta_mode_actually_saves_calls_on_disjoint_batches(self):
        """Vacuity guard: the equivalence above must compare distinct work."""
        events = []
        for t in range(10):
            events.append(Interaction(f"s{t}", f"t{t}", t, 50))
        delta_solutions, delta_calls = replay("sieve_adn", events, "delta")
        version_solutions, version_calls = replay("sieve_adn", events, "version")
        assert delta_solutions == version_solutions
        assert delta_calls < version_calls


class TestSharedSweep:
    def test_cone_candidates_match_changed_nodes(self):
        """SIEVEADN's reused dirty cone equals the changed_nodes sweep."""
        events = seeded_events(7)
        graph = TDNGraph()
        sieve = SieveADN(2, 0.2, graph)
        seen = []
        original = SieveADN.process_candidates

        def capture(self, candidates):
            candidates = list(candidates)
            seen.append(candidates)
            return original(self, candidates)

        SieveADN.process_candidates = capture
        try:
            for t, batch in MemoryStream(events, fill_gaps=True):
                graph.advance_to(t)
                graph.add_batch(batch)
                expected = (
                    changed_nodes(graph, batch, None, "ancestors", backend="csr")
                    if batch
                    else []
                )
                sieve.on_batch(t, batch)
                if batch:
                    assert seen[-1] == expected
        finally:
            SieveADN.process_candidates = original


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6),  # source
            st.integers(min_value=0, max_value=6),  # target
            st.one_of(st.none(), st.integers(min_value=1, max_value=6)),  # lifetime
            st.integers(min_value=0, max_value=2),  # clock advance first
        ),
        min_size=1,
        max_size=40,
    )
)
def test_retained_entries_equal_from_scratch_spread(events):
    """Soundness: anything the delta memo retains is exactly recomputable."""
    graph = TDNGraph()
    oracle = InfluenceOracle(graph)
    t = 0
    for u, v, lifetime, advance in events:
        if u == v:
            continue
        if advance:
            t += advance
            graph.advance_to(t)
        graph.add_interaction(Interaction(f"n{u}", f"n{v}", t, lifetime))
        nodes = sorted(graph.node_set(), key=repr)
        probes = [frozenset([n]) for n in nodes[:4]]
        if len(nodes) >= 2:
            probes.append(frozenset(nodes[:2]))
        for horizon in (None, t + 2):
            for probe in probes:
                oracle.spread(probe, horizon)
        # Every cached entry — newly computed or retained across any number
        # of version bumps — must equal a from-scratch reference spread.
        reference = InfluenceOracle(graph, backend="dict", max_cache_entries=0)
        for (horizon, key_nodes), value in list(oracle._memo.data.items()):
            assert value == reference.spread(key_nodes, horizon), (
                key_nodes,
                horizon,
            )


class TestSpreadManyBadInput:
    def test_unhashable_input_leaves_no_pending_reservations(self):
        """A bad set raises before any cache slot is reserved."""
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 9))
        oracle = InfluenceOracle(graph)
        with pytest.raises(TypeError):
            oracle.spread_many([("a",), ([],)])  # list is unhashable
        # The good set was never reserved: a fresh batch evaluates clean.
        assert oracle.spread_many([("a",)]) == [2]
        assert oracle.calls == 1
