"""Unit tests for the counted, cached influence oracle."""

from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


def star_graph():
    graph = TDNGraph()
    for i in range(4):
        graph.add_interaction(Interaction("hub", f"leaf{i}", 0, 10))
    return graph


class TestSpread:
    def test_empty_set_is_zero_and_free(self):
        oracle = InfluenceOracle(star_graph())
        assert oracle.spread([]) == 0
        assert oracle.calls == 0  # normalization costs nothing

    def test_singleton_spread(self):
        oracle = InfluenceOracle(star_graph())
        assert oracle.spread(["hub"]) == 5  # hub + 4 leaves
        assert oracle.spread(["leaf0"]) == 1

    def test_set_spread_counts_distinct(self):
        oracle = InfluenceOracle(star_graph())
        assert oracle.spread(["hub", "leaf0"]) == 5

    def test_horizon_respected(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        graph.add_interaction(Interaction("a", "c", 0, 9))
        oracle = InfluenceOracle(graph)
        assert oracle.spread(["a"]) == 3
        assert oracle.spread(["a"], min_expiry=5) == 2


class TestCountingAndCaching:
    def test_repeat_evaluation_hits_cache(self):
        oracle = InfluenceOracle(star_graph())
        oracle.spread(["hub"])
        oracle.spread(["hub"])
        assert oracle.calls == 1

    def test_node_order_irrelevant_for_cache(self):
        oracle = InfluenceOracle(star_graph())
        oracle.spread(["hub", "leaf0"])
        oracle.spread(["leaf0", "hub"])
        assert oracle.calls == 1

    def test_different_horizons_cached_separately(self):
        oracle = InfluenceOracle(star_graph())
        assert oracle.spread(["hub"], min_expiry=None) == 5
        assert oracle.spread(["hub"], min_expiry=20) == 1
        assert oracle.calls == 2

    def test_cache_invalidated_on_mutation(self):
        graph = star_graph()
        oracle = InfluenceOracle(graph)
        assert oracle.spread(["hub"]) == 5
        graph.add_interaction(Interaction("hub", "leaf9", 0, 10))
        assert oracle.spread(["hub"]) == 6
        assert oracle.calls == 2

    def test_cache_invalidated_on_expiry(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 1))
        graph.add_interaction(Interaction("a", "c", 0, 5))
        oracle = InfluenceOracle(graph)
        assert oracle.spread(["a"]) == 3
        graph.advance_to(1)
        assert oracle.spread(["a"]) == 2

    def test_explicit_invalidate(self):
        oracle = InfluenceOracle(star_graph())
        oracle.spread(["hub"])
        oracle.invalidate()
        oracle.spread(["hub"])
        assert oracle.calls == 2

    def test_shared_counter(self):
        from repro.utils.counters import CallCounter

        counter = CallCounter("shared")
        graph = star_graph()
        oracle_a = InfluenceOracle(graph, counter)
        oracle_b = InfluenceOracle(graph, counter)
        oracle_a.spread(["hub"])
        oracle_b.spread(["leaf0"])
        assert counter.total == 2


class TestMarginalGain:
    def test_gain_matches_direct_difference(self):
        oracle = InfluenceOracle(star_graph())
        expected = oracle.spread(["hub", "leaf0"]) - oracle.spread(["hub"])
        assert oracle.marginal_gain(["hub"], "leaf0") == expected

    def test_gain_of_member_is_zero(self):
        oracle = InfluenceOracle(star_graph())
        calls_before = oracle.calls
        assert oracle.marginal_gain(["hub"], "hub") == 0
        assert oracle.calls == calls_before  # short-circuit, no evaluation

    def test_gain_from_empty_base(self):
        oracle = InfluenceOracle(star_graph())
        assert oracle.marginal_gain([], "hub") == 5
