"""Unit tests for the counted, cached influence oracle."""

from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


def star_graph():
    graph = TDNGraph()
    for i in range(4):
        graph.add_interaction(Interaction("hub", f"leaf{i}", 0, 10))
    return graph


class TestSpread:
    def test_empty_set_is_zero_and_free(self):
        oracle = InfluenceOracle(star_graph())
        assert oracle.spread([]) == 0
        assert oracle.calls == 0  # normalization costs nothing

    def test_singleton_spread(self):
        oracle = InfluenceOracle(star_graph())
        assert oracle.spread(["hub"]) == 5  # hub + 4 leaves
        assert oracle.spread(["leaf0"]) == 1

    def test_set_spread_counts_distinct(self):
        oracle = InfluenceOracle(star_graph())
        assert oracle.spread(["hub", "leaf0"]) == 5

    def test_horizon_respected(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        graph.add_interaction(Interaction("a", "c", 0, 9))
        oracle = InfluenceOracle(graph)
        assert oracle.spread(["a"]) == 3
        assert oracle.spread(["a"], min_expiry=5) == 2


class TestCountingAndCaching:
    def test_repeat_evaluation_hits_cache(self):
        oracle = InfluenceOracle(star_graph())
        oracle.spread(["hub"])
        oracle.spread(["hub"])
        assert oracle.calls == 1

    def test_node_order_irrelevant_for_cache(self):
        oracle = InfluenceOracle(star_graph())
        oracle.spread(["hub", "leaf0"])
        oracle.spread(["leaf0", "hub"])
        assert oracle.calls == 1

    def test_different_horizons_cached_separately(self):
        oracle = InfluenceOracle(star_graph())
        assert oracle.spread(["hub"], min_expiry=None) == 5
        assert oracle.spread(["hub"], min_expiry=20) == 1
        assert oracle.calls == 2

    def test_cache_invalidated_on_mutation(self):
        graph = star_graph()
        oracle = InfluenceOracle(graph)
        assert oracle.spread(["hub"]) == 5
        graph.add_interaction(Interaction("hub", "leaf9", 0, 10))
        assert oracle.spread(["hub"]) == 6
        assert oracle.calls == 2

    def test_cache_invalidated_on_expiry(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 1))
        graph.add_interaction(Interaction("a", "c", 0, 5))
        oracle = InfluenceOracle(graph)
        assert oracle.spread(["a"]) == 3
        graph.advance_to(1)
        assert oracle.spread(["a"]) == 2

    def test_explicit_invalidate(self):
        oracle = InfluenceOracle(star_graph())
        oracle.spread(["hub"])
        oracle.invalidate()
        oracle.spread(["hub"])
        assert oracle.calls == 2

    def test_shared_counter(self):
        from repro.utils.counters import CallCounter

        counter = CallCounter("shared")
        graph = star_graph()
        oracle_a = InfluenceOracle(graph, counter)
        oracle_b = InfluenceOracle(graph, counter)
        oracle_a.spread(["hub"])
        oracle_b.spread(["leaf0"])
        assert counter.total == 2


class TestMarginalGain:
    def test_gain_matches_direct_difference(self):
        oracle = InfluenceOracle(star_graph())
        expected = oracle.spread(["hub", "leaf0"]) - oracle.spread(["hub"])
        assert oracle.marginal_gain(["hub"], "leaf0") == expected

    def test_gain_of_member_is_zero(self):
        oracle = InfluenceOracle(star_graph())
        calls_before = oracle.calls
        assert oracle.marginal_gain(["hub"], "hub") == 0
        assert oracle.calls == calls_before  # short-circuit, no evaluation

    def test_gain_from_empty_base(self):
        oracle = InfluenceOracle(star_graph())
        assert oracle.marginal_gain([], "hub") == 5


class TestBackends:
    def test_invalid_backend_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="backend"):
            InfluenceOracle(star_graph(), backend="sparse")

    def test_backends_agree_on_values(self):
        graph = star_graph()
        dict_oracle = InfluenceOracle(graph, backend="dict")
        csr_oracle = InfluenceOracle(graph, backend="csr")
        for seeds in (["hub"], ["leaf0"], ["hub", "leaf1"], ["missing"]):
            assert dict_oracle.spread(seeds) == csr_oracle.spread(seeds)

    def test_unknown_nodes_count_themselves(self):
        # A queried node the graph has never seen still "influences" itself,
        # on both backends (the dict BFS yields it from the seed set).
        graph = star_graph()
        for backend in ("dict", "csr"):
            oracle = InfluenceOracle(graph, backend=backend)
            assert oracle.spread(["ghost"]) == 1
            assert oracle.spread(["ghost", "phantom"]) == 2
            assert oracle.spread(["hub", "ghost"]) == 6


class TestSpreadMany:
    def test_values_match_sequential_spreads(self):
        graph = star_graph()
        batched = InfluenceOracle(graph)
        sequential = InfluenceOracle(graph)
        sets = [["hub"], ["leaf0"], [], ["hub", "leaf0"], ["leaf1"]]
        assert batched.spread_many(sets) == [sequential.spread(s) for s in sets]

    def test_call_counting_matches_sequential(self):
        graph = star_graph()
        batched = InfluenceOracle(graph)
        sequential = InfluenceOracle(graph)
        sets = [["hub"], ["hub"], ["leaf0"], [], ["leaf0", "hub"], ["hub"]]
        batched.spread_many(sets, min_expiry=5)
        for s in sets:
            sequential.spread(s, min_expiry=5)
        assert batched.calls == sequential.calls == 3

    def test_empty_batch(self):
        assert InfluenceOracle(star_graph()).spread_many([]) == []


class TestCacheEviction:
    """Under cache pressure the oracle must evict, never stop memoizing."""

    def test_recent_entries_stay_hot_at_capacity(self):
        oracle = InfluenceOracle(star_graph(), max_cache_entries=2)
        oracle.spread(["leaf0"])  # cache: [leaf0]
        oracle.spread(["leaf1"])  # cache: [leaf0, leaf1]
        oracle.spread(["leaf2"])  # evicts leaf0 -> cache: [leaf1, leaf2]
        assert oracle.calls == 3
        # The two most recent spreads are still memoized.
        oracle.spread(["leaf2"])
        oracle.spread(["leaf1"])
        assert oracle.calls == 3
        # The evicted oldest entry re-counts (and re-enters the cache).
        oracle.spread(["leaf0"])
        assert oracle.calls == 4
        oracle.spread(["leaf0"])
        assert oracle.calls == 4

    def test_query_heavy_phase_does_not_lock_out_memoization(self):
        # Regression: the old implementation stopped admitting entries once
        # the cap was reached, so every *new* spread after the cap was
        # re-counted forever within a version.  With FIFO eviction a
        # repeated recent query is always a hit.
        oracle = InfluenceOracle(star_graph(), max_cache_entries=3)
        for index in range(10):
            oracle.spread([f"leaf{index % 4}"])  # rolling working set
        calls_after_warmup = oracle.calls
        oracle.spread(["leaf1"])  # most recent entry: must be cached
        assert oracle.calls == calls_after_warmup

    def test_zero_capacity_disables_memoization(self):
        oracle = InfluenceOracle(star_graph(), max_cache_entries=0)
        oracle.spread(["hub"])
        oracle.spread(["hub"])
        assert oracle.calls == 2

    def test_negative_capacity_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="max_cache_entries"):
            InfluenceOracle(star_graph(), max_cache_entries=-1)
