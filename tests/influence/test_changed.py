"""Unit tests for the changed-node set ``V_t-bar`` computation."""

import pytest

from repro.influence.changed import changed_nodes
from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


class TestModes:
    def test_sources_mode_returns_batch_sources(self):
        graph = TDNGraph()
        batch = [Interaction("a", "b", 0, 5), Interaction("c", "d", 0, 5)]
        graph.add_batch(batch)
        assert set(changed_nodes(graph, batch, mode="sources")) == {"a", "c"}

    def test_ancestors_mode_includes_upstream(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("up", "a", 0, 9))
        batch = [Interaction("a", "b", 0, 9)]
        graph.add_batch(batch)
        assert set(changed_nodes(graph, batch, mode="ancestors")) == {"up", "a"}

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="mode"):
            changed_nodes(TDNGraph(), [], mode="bogus")

    def test_empty_batch(self):
        assert changed_nodes(TDNGraph(), []) == []

    def test_deterministic_order_is_interned_id_order(self):
        graph = TDNGraph()
        # "b" is interned before "a", so it sorts first (first-appearance
        # order, not lexicographic repr order).
        batch = [Interaction("b", "x", 0, 5), Interaction("a", "y", 0, 5)]
        graph.add_batch(batch)
        assert changed_nodes(graph, batch, mode="sources") == ["b", "a"]
        assert graph.node_id("b") < graph.node_id("a")

    def test_uninterned_nodes_sort_after_interned_by_repr(self):
        graph = TDNGraph()
        graph.add_batch([Interaction("z", "y", 0, 5)])
        # Batch not inserted (contract violation, but the ordering must
        # still be deterministic): sources never interned fall back to repr.
        phantom = [Interaction("b", "q", 0, 5), Interaction("a", "q", 0, 5)]
        ordered = changed_nodes(graph, phantom + [Interaction("z", "x", 0, 5)],
                                mode="sources")
        assert ordered == ["z", "a", "b"]


class TestBackends:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            changed_nodes(TDNGraph(), [], backend="sparse")

    def test_csr_and_dict_backends_agree(self):
        import random

        rng = random.Random(13)
        graph = TDNGraph()
        t = 0
        graph.csr()  # live engine: ancestors run on transpose + overlay
        for step in range(120):
            if rng.random() < 0.2:
                t += rng.randint(1, 3)
                graph.advance_to(t)
            u, v = rng.sample(range(15), 2)
            batch = [Interaction(f"n{u}", f"n{v}", t, rng.randint(1, 12))]
            graph.add_batch(batch)
            for min_expiry in (None, t + 2):
                via_dict = changed_nodes(
                    graph, batch, min_expiry, "ancestors", backend="dict"
                )
                via_csr = changed_nodes(
                    graph, batch, min_expiry, "ancestors", backend="csr"
                )
                assert via_csr == via_dict  # same set, same order


class TestSupersetProperty:
    def test_ancestors_superset_covers_all_spread_changes(self):
        """Every node whose spread changed must be in the ancestors set.

        Build a graph, record all nodes' spreads, insert a batch, and check
        that any node whose spread changed is reported.
        """
        graph = TDNGraph()
        base = [
            Interaction("a", "b", 0, 9),
            Interaction("b", "c", 0, 9),
            Interaction("x", "y", 0, 9),
        ]
        graph.add_batch(base)
        oracle = InfluenceOracle(graph)
        before = {n: oracle.spread([n]) for n in graph.node_set()}
        batch = [Interaction("c", "x", 0, 9)]
        graph.add_batch(batch)
        oracle_after = InfluenceOracle(graph)
        changed = set(changed_nodes(graph, batch, mode="ancestors"))
        for node, old in before.items():
            if oracle_after.spread([node]) != old:
                assert node in changed, f"{node} changed but was not reported"

    def test_horizon_filter_limits_ancestry(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("up", "a", 0, 2))  # expiry 2
        batch = [Interaction("a", "b", 0, 9)]
        graph.add_batch(batch)
        # At horizon 5 the up->a edge is invisible.
        assert set(changed_nodes(graph, batch, min_expiry=5)) == {"a"}
        assert set(changed_nodes(graph, batch, min_expiry=None)) == {"up", "a"}

    def test_paths_through_same_batch_count(self):
        graph = TDNGraph()
        batch = [Interaction("a", "b", 0, 9), Interaction("b", "c", 0, 9)]
        graph.add_batch(batch)
        # a reaches b through the first edge of the same batch, so a is an
        # ancestor of source b as well.
        changed = set(changed_nodes(graph, batch, mode="ancestors"))
        assert changed == {"a", "b"}
