"""Unit tests for the changed-node set ``V_t-bar`` computation."""

import pytest

from repro.influence.changed import changed_nodes
from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


class TestModes:
    def test_sources_mode_returns_batch_sources(self):
        graph = TDNGraph()
        batch = [Interaction("a", "b", 0, 5), Interaction("c", "d", 0, 5)]
        graph.add_batch(batch)
        assert set(changed_nodes(graph, batch, mode="sources")) == {"a", "c"}

    def test_ancestors_mode_includes_upstream(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("up", "a", 0, 9))
        batch = [Interaction("a", "b", 0, 9)]
        graph.add_batch(batch)
        assert set(changed_nodes(graph, batch, mode="ancestors")) == {"up", "a"}

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="mode"):
            changed_nodes(TDNGraph(), [], mode="bogus")

    def test_empty_batch(self):
        assert changed_nodes(TDNGraph(), []) == []

    def test_deterministic_order(self):
        graph = TDNGraph()
        batch = [Interaction("b", "x", 0, 5), Interaction("a", "y", 0, 5)]
        graph.add_batch(batch)
        assert changed_nodes(graph, batch, mode="sources") == ["'a'", "'b'"] or \
            changed_nodes(graph, batch, mode="sources") == ["a", "b"]


class TestSupersetProperty:
    def test_ancestors_superset_covers_all_spread_changes(self):
        """Every node whose spread changed must be in the ancestors set.

        Build a graph, record all nodes' spreads, insert a batch, and check
        that any node whose spread changed is reported.
        """
        graph = TDNGraph()
        base = [
            Interaction("a", "b", 0, 9),
            Interaction("b", "c", 0, 9),
            Interaction("x", "y", 0, 9),
        ]
        graph.add_batch(base)
        oracle = InfluenceOracle(graph)
        before = {n: oracle.spread([n]) for n in graph.node_set()}
        batch = [Interaction("c", "x", 0, 9)]
        graph.add_batch(batch)
        oracle_after = InfluenceOracle(graph)
        changed = set(changed_nodes(graph, batch, mode="ancestors"))
        for node, old in before.items():
            if oracle_after.spread([node]) != old:
                assert node in changed, f"{node} changed but was not reported"

    def test_horizon_filter_limits_ancestry(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("up", "a", 0, 2))  # expiry 2
        batch = [Interaction("a", "b", 0, 9)]
        graph.add_batch(batch)
        # At horizon 5 the up->a edge is invisible.
        assert set(changed_nodes(graph, batch, min_expiry=5)) == {"a"}
        assert set(changed_nodes(graph, batch, min_expiry=None)) == {"up", "a"}

    def test_paths_through_same_batch_count(self):
        graph = TDNGraph()
        batch = [Interaction("a", "b", 0, 9), Interaction("b", "c", 0, 9)]
        graph.add_batch(batch)
        # a reaches b through the first edge of the same batch, so a is an
        # ancestor of source b as well.
        changed = set(changed_nodes(graph, batch, mode="ancestors"))
        assert changed == {"a", "b"}
