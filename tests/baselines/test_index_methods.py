"""Behavioural tests for IMM, TIM+ and the DIM-style index."""

import pytest

from repro.baselines.dim import DIMIndex
from repro.baselines.imm import IMM, log_binomial
from repro.baselines.tim_plus import TIMPlus
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


def hub_graph(repeats=30):
    """One dominant hub (near-1 probabilities) plus background noise."""
    graph = TDNGraph()
    for i in range(5):
        for _ in range(repeats):
            graph.add_interaction(Interaction("hub", f"leaf{i}", 0, 9))
    graph.add_interaction(Interaction("x", "y", 0, 9))
    return graph


class TestLogBinomial:
    def test_known_values(self):
        import math

        assert log_binomial(5, 2) == pytest.approx(math.log(10))
        assert log_binomial(10, 0) == pytest.approx(0.0)

    def test_degenerate(self):
        assert log_binomial(3, 5) == 0.0
        assert log_binomial(0, 0) == 0.0


@pytest.mark.parametrize("cls", [IMM, TIMPlus])
class TestStaticIndexMethods:
    def test_finds_dominant_hub(self, cls):
        graph = hub_graph()
        algo = cls(1, graph, seed=1, max_rr_sets=2_000)
        algo.on_batch(0, [])
        solution = algo.query()
        assert solution.nodes == ("hub",)
        assert solution.value == 6.0  # true reachability value reported

    def test_empty_graph(self, cls):
        algo = cls(2, TDNGraph(), seed=1)
        assert algo.query().value == 0.0

    def test_respects_budget(self, cls):
        graph = hub_graph()
        algo = cls(3, graph, seed=2, max_rr_sets=1_000)
        assert len(algo.query().nodes) <= 3

    def test_adapts_to_decay(self, cls):
        graph = TDNGraph()
        for _ in range(30):
            graph.add_interaction(Interaction("early", "e1", 0, 1))
            graph.add_interaction(Interaction("late", "l1", 0, 9))
            graph.add_interaction(Interaction("late", "l2", 0, 9))
        algo = cls(1, graph, seed=3, max_rr_sets=1_000)
        graph.advance_to(1)
        algo.on_batch(1, [])
        assert algo.query().nodes == ("late",)


class TestDIMIndex:
    def test_finds_dominant_hub(self):
        graph = TDNGraph()
        dim = DIMIndex(1, graph, seed=1, beta=8.0, max_sketches=500)
        batch = []
        for i in range(5):
            for _ in range(30):
                batch.append(Interaction("hub", f"leaf{i}", 0, 9))
        batch.append(Interaction("x", "y", 0, 9))
        graph.add_batch(batch)
        dim.on_batch(0, batch)
        assert dim.query().nodes == ("hub",)

    def test_index_tracks_expiry(self):
        # A generous beta keeps the pool large enough that estimation noise
        # (DIM's documented instability) cannot flip this tiny instance.
        graph = TDNGraph()
        dim = DIMIndex(1, graph, seed=2, beta=60.0, max_sketches=1_000)
        batch = []
        for _ in range(30):
            batch.append(Interaction("early", "e1", 0, 1))
            batch.append(Interaction("early", "e2", 0, 1))
            batch.append(Interaction("late", "l1", 0, 5))
        graph.add_batch(batch)
        dim.on_batch(0, batch)
        assert dim.query().nodes == ("early",)
        graph.advance_to(1)
        dim.on_batch(1, [])
        assert dim.query().nodes == ("late",)

    def test_sketch_pool_bounded(self):
        graph = TDNGraph()
        dim = DIMIndex(1, graph, seed=3, beta=100.0, max_sketches=40)
        batch = [Interaction(f"a{i}", f"b{i}", 0, 9) for i in range(20)]
        graph.add_batch(batch)
        dim.on_batch(0, batch)
        assert dim.num_sketches <= 40

    def test_empty_graph_query(self):
        dim = DIMIndex(2, TDNGraph(), seed=1)
        assert dim.query().value == 0.0

    def test_pool_cleared_when_graph_empties(self):
        graph = TDNGraph()
        dim = DIMIndex(1, graph, seed=4, beta=4.0)
        batch = [Interaction("a", "b", 0, 1)]
        graph.add_batch(batch)
        dim.on_batch(0, batch)
        assert dim.num_sketches > 0
        graph.advance_to(1)
        dim.on_batch(1, [])
        assert dim.num_sketches == 0

    def test_estimated_spread_consistent(self):
        graph = TDNGraph()
        dim = DIMIndex(1, graph, seed=5, beta=16.0, max_sketches=2_000)
        batch = []
        for _ in range(40):
            batch.append(Interaction("hub", "a", 0, 9))
            batch.append(Interaction("hub", "b", 0, 9))
        graph.add_batch(batch)
        dim.on_batch(0, batch)
        # hub activates a and b with probability ~1: spread ~3 of 3 nodes.
        assert dim.estimated_spread(["hub"]) == pytest.approx(3.0, abs=0.3)
