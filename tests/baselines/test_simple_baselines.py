"""Unit tests for the Random and Greedy baselines."""

from repro.baselines.greedy_recompute import GreedyRecompute
from repro.baselines.random_baseline import RandomBaseline
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


def populated_graph():
    graph = TDNGraph()
    for i in range(5):
        graph.add_interaction(Interaction("hub", f"leaf{i}", 0, 9))
    graph.add_interaction(Interaction("solo", "other", 0, 9))
    return graph


class TestRandomBaseline:
    def test_respects_budget(self):
        graph = populated_graph()
        random_algo = RandomBaseline(3, graph, seed=1)
        random_algo.on_batch(0, [])
        assert len(random_algo.query().nodes) == 3

    def test_k_larger_than_population(self):
        graph = populated_graph()
        random_algo = RandomBaseline(100, graph, seed=1)
        assert len(random_algo.query().nodes) == graph.num_nodes

    def test_empty_graph(self):
        random_algo = RandomBaseline(3, TDNGraph(), seed=1)
        assert random_algo.query().value == 0.0

    def test_deterministic_with_seed(self):
        graph = populated_graph()
        a = RandomBaseline(3, graph, seed=42).query().nodes
        b = RandomBaseline(3, graph, seed=42).query().nodes
        assert a == b

    def test_redraws_each_query(self):
        graph = populated_graph()
        random_algo = RandomBaseline(2, graph, seed=7)
        draws = {random_algo.query().nodes for _ in range(10)}
        assert len(draws) > 1

    def test_value_is_true_spread(self):
        graph = populated_graph()
        random_algo = RandomBaseline(1, graph, seed=3)
        solution = random_algo.query()
        from repro.influence.oracle import InfluenceOracle

        assert solution.value == InfluenceOracle(graph).spread(solution.nodes)


class TestGreedyRecompute:
    def test_finds_the_hub(self):
        graph = populated_graph()
        greedy = GreedyRecompute(1, graph)
        assert greedy.query().nodes == ("hub",)

    def test_two_seeds_cover_both_stars(self):
        graph = populated_graph()
        greedy = GreedyRecompute(2, graph)
        assert set(greedy.query().nodes) == {"hub", "solo"}
        assert greedy.query().value == 8.0

    def test_empty_graph(self):
        greedy = GreedyRecompute(2, TDNGraph())
        assert greedy.query().value == 0.0

    def test_recomputes_after_decay(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 1))
        graph.add_interaction(Interaction("c", "d", 0, 5))
        graph.add_interaction(Interaction("c", "e", 0, 5))
        greedy = GreedyRecompute(1, graph)
        greedy.on_batch(0, [])
        assert greedy.query().nodes == ("c",)
        graph.advance_to(1)
        greedy.on_batch(1, [])
        assert greedy.query().nodes == ("c",)

    def test_matches_quality_reference(self):
        """Greedy on reachability achieves (1 - 1/e) OPT; on this small
        instance it is exactly optimal."""
        from repro.influence.oracle import InfluenceOracle
        from repro.submodular.functions import SpreadFunction
        from repro.submodular.greedy import brute_force_optimum

        graph = populated_graph()
        greedy = GreedyRecompute(2, graph)
        oracle = InfluenceOracle(graph)
        optimum = brute_force_optimum(
            SpreadFunction(oracle), sorted(graph.node_set(), key=repr), 2
        )
        assert greedy.query().value == optimum.value
