"""Unit and statistical tests for the RR-set machinery."""

import random

import pytest

from repro.baselines.rr_sets import RRCollection, sample_rr_set
from repro.influence.ic_model import estimate_spread_mc
from repro.influence.probabilities import WeightedGraphSnapshot
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


def snapshot_chain(repeats=60):
    """a -> b -> c with near-1 probabilities."""
    graph = TDNGraph()
    for _ in range(repeats):
        graph.add_interaction(Interaction("a", "b", 0, 9))
        graph.add_interaction(Interaction("b", "c", 0, 9))
    return WeightedGraphSnapshot(graph)


def snapshot_sparse():
    graph = TDNGraph()
    graph.add_interaction(Interaction("a", "b", 0, 9))
    graph.add_interaction(Interaction("c", "b", 0, 9))
    return WeightedGraphSnapshot(graph)


class TestSampleRRSet:
    def test_contains_root(self):
        snapshot = snapshot_sparse()
        rng = random.Random(0)
        for root in range(snapshot.num_nodes):
            assert root in sample_rr_set(snapshot, rng, root=root)

    def test_near_deterministic_chain(self):
        snapshot = snapshot_chain()
        rng = random.Random(1)
        root = snapshot.index["c"]
        rr = sample_rr_set(snapshot, rng, root=root)
        assert rr == {snapshot.index["a"], snapshot.index["b"], root}

    def test_source_only_root(self):
        snapshot = snapshot_chain()
        rng = random.Random(2)
        root = snapshot.index["a"]
        assert sample_rr_set(snapshot, rng, root=root) == {root}

    def test_empty_snapshot(self):
        empty = sample_rr_set(WeightedGraphSnapshot(TDNGraph()), random.Random(0))
        assert empty == set()


class TestRRCollection:
    def test_sample_count(self):
        collection = RRCollection(snapshot_sparse())
        collection.sample(50, rng=3)
        assert len(collection) == 50
        assert collection.total_size >= 50

    def test_unbiased_spread_estimate(self):
        """n * coverage must agree with the MC forward estimate."""
        graph = TDNGraph()
        rng = random.Random(5)
        nodes = [f"n{i}" for i in range(8)]
        for _ in range(20):
            u, v = rng.sample(range(8), 2)
            graph.add_interaction(Interaction(nodes[u], nodes[v], 0, 9))
        snapshot = WeightedGraphSnapshot(graph)
        collection = RRCollection(snapshot)
        collection.sample(30_000, rng=7)
        seeds = [nodes[0], nodes[3]]
        rr_estimate = collection.estimate_spread(seeds)
        mc_estimate = estimate_spread_mc(snapshot, seeds, num_simulations=30_000, rng=9)
        assert rr_estimate == pytest.approx(mc_estimate, rel=0.1)

    def test_select_seeds_prefers_influencer(self):
        snapshot = snapshot_chain()
        collection = RRCollection(snapshot)
        collection.sample(300, rng=11)
        seeds, estimate = collection.select_seeds(1)
        assert seeds == ["a"]
        assert estimate > 2.0

    def test_select_seeds_empty_collection(self):
        collection = RRCollection(snapshot_sparse())
        assert collection.select_seeds(2) == ([], 0.0)

    def test_estimate_with_unknown_seed(self):
        collection = RRCollection(snapshot_sparse())
        collection.sample(10, rng=1)
        assert collection.estimate_spread(["ghost"]) == 0.0

    def test_coverage_fraction_bounds(self):
        collection = RRCollection(snapshot_chain())
        collection.sample(100, rng=2)
        fraction = collection.coverage_fraction(["a"])
        assert 0.0 <= fraction <= 1.0
