"""Tests for the extension baselines: sliding-window SSO and interchange."""

import random

from repro.baselines.interchange import InterchangeGreedy
from repro.baselines.sliding_window import SlidingWindowSSO
from repro.submodular.functions import CoverageFunction
from repro.submodular.greedy import brute_force_optimum
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


class TestSlidingWindowSSO:
    def coverage_factory(self, sets):
        return lambda: CoverageFunction(sets)

    def test_window_restricts_answer(self):
        """Elements older than the window must stop contributing."""
        sets = [{i} for i in range(10)]
        sso = SlidingWindowSSO(self.coverage_factory(sets), k=3, epsilon=0.1, window=3)
        for element in range(10):
            sso.process(element)
        nodes, value = sso.query()
        # Only the last 3 elements are in the window; older ones are gone
        # from every surviving instance's input.
        assert set(nodes).issubset({7, 8, 9})
        assert value == 3.0

    def test_instance_count_stays_small(self):
        sets = [{i % 4} for i in range(50)]
        sso = SlidingWindowSSO(self.coverage_factory(sets), k=2, epsilon=0.2, window=10)
        for element in range(50):
            sso.process(element % 4)
        assert sso.num_instances <= 12

    def test_one_third_guarantee_on_random_instances(self):
        """(1/3 - eps) of the window optimum (Epasto et al. guarantee)."""
        rng = random.Random(9)
        for _ in range(10):
            sets = [
                {rng.randrange(12) for _ in range(rng.randint(1, 4))}
                for _ in range(10)
            ]
            window, k, eps = 5, 2, 0.1
            cover = CoverageFunction(sets)
            sso = SlidingWindowSSO(
                lambda: CoverageFunction(sets), k=k, epsilon=eps, window=window
            )
            stream = [rng.randrange(12) for _ in range(15)]
            for element in stream:
                sso.process(element)
            window_elements = sorted(set(stream[-window:]))
            optimum = brute_force_optimum(cover, window_elements, k).value
            _, value = sso.query()
            assert value >= (1.0 / 3.0 - eps) * optimum - 1e-9

    def test_empty_query(self):
        sso = SlidingWindowSSO(
            lambda: CoverageFunction([{1}]), k=1, epsilon=0.1, window=5
        )
        assert sso.query() == ([], 0.0)


class TestInterchangeGreedy:
    def test_finds_hub(self):
        graph = TDNGraph()
        for i in range(4):
            graph.add_interaction(Interaction("hub", f"x{i}", 0, 9))
        algo = InterchangeGreedy(1, graph)
        assert algo.query().nodes == ("hub",)

    def test_swaps_toward_new_influencer(self):
        graph = TDNGraph()
        for i in range(3):
            graph.add_interaction(Interaction("old", f"x{i}", 0, 2))
        algo = InterchangeGreedy(1, graph, gamma=0.05)
        algo.on_batch(0, [])
        assert algo.query().nodes == ("old",)
        # A larger star appears; the old one decays away.
        graph.advance_to(1)
        batch = [Interaction("new", f"y{i}", 1, 9) for i in range(8)]
        graph.add_batch(batch)
        algo.on_batch(1, batch)
        assert algo.query().nodes == ("new",)

    def test_dead_members_repaired(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 1))
        algo = InterchangeGreedy(1, graph)
        algo.on_batch(0, [])
        assert algo.query().nodes == ("a",)
        graph.advance_to(1)
        graph.add_interaction(Interaction("c", "d", 1, 9))
        algo.on_batch(1, [])
        assert algo.query().nodes == ("c",)

    def test_empty_graph(self):
        algo = InterchangeGreedy(2, TDNGraph())
        assert algo.query().value == 0.0

    def test_respects_budget(self):
        graph = TDNGraph()
        for i in range(8):
            graph.add_interaction(Interaction(f"s{i}", f"t{i}", 0, 9))
        algo = InterchangeGreedy(3, graph)
        assert len(algo.query().nodes) == 3
