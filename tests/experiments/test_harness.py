"""Integration tests for the side-by-side tracking harness."""

import pytest

from repro.baselines.greedy_recompute import GreedyRecompute
from repro.core.hist_approx import HistApprox
from repro.experiments.harness import run_tracking
from repro.tdn.interaction import Interaction
from repro.tdn.lifetimes import ConstantLifetime
from repro.tdn.stream import MemoryStream


def small_stream():
    events = []
    for t in range(10):
        events.append(Interaction("hub", f"x{t}", t))
        if t % 2 == 0:
            events.append(Interaction(f"s{t}", "hub", t))
    return MemoryStream(events)


def factories(k=2):
    return {
        "hist": lambda graph: HistApprox(k, 0.2, graph),
        "greedy": lambda graph: GreedyRecompute(k, graph),
    }


class TestRunTracking:
    def test_series_recorded_per_algorithm(self):
        report = run_tracking(
            small_stream(), factories(), lifetime_policy=ConstantLifetime(4)
        )
        assert report.names() == ["hist", "greedy"]
        assert report.num_steps == 10
        assert len(report["hist"].values) == 10

    def test_query_interval_still_records_last_step(self):
        report = run_tracking(
            small_stream(),
            factories(),
            lifetime_policy=ConstantLifetime(4),
            query_interval=4,
        )
        times = report["hist"].times
        assert times[0] == 0
        assert times[-1] == 9  # final step always recorded
        assert len(times) == 4  # steps 0, 4, 8, 9

    def test_shared_lifetimes_across_algorithms(self):
        """Both algorithms must observe identical streams: with a shared
        one-shot policy draw, hist and greedy values track closely."""
        report = run_tracking(
            small_stream(), factories(k=1), lifetime_policy=ConstantLifetime(3)
        )
        # Greedy is the quality ceiling; hist can never exceed it by more
        # than floating error on a shared stream.
        for hist_value, greedy_value in zip(
            report["hist"].values, report["greedy"].values
        ):
            assert hist_value <= greedy_value + 1e-9

    def test_oracle_counters_are_independent(self):
        report = run_tracking(
            small_stream(), factories(), lifetime_policy=ConstantLifetime(4)
        )
        assert report["hist"].total_calls > 0
        assert report["greedy"].total_calls > 0

    def test_max_steps_truncates(self):
        report = run_tracking(
            small_stream(),
            factories(),
            lifetime_policy=ConstantLifetime(4),
            max_steps=3,
        )
        assert report.num_steps == 3

    def test_invalid_query_interval(self):
        with pytest.raises(ValueError):
            run_tracking(small_stream(), factories(), query_interval=0)

    def test_final_nodes_exposed(self):
        report = run_tracking(
            small_stream(), factories(k=1), lifetime_policy=ConstantLifetime(4)
        )
        # In the final window the best single seed is an s-node that reaches
        # the hub (one extra hop beats seeding the hub itself).
        assert report.final_nodes["greedy"] in (("s6",), ("s8",))

    def test_wall_clock_accumulates(self):
        report = run_tracking(
            small_stream(), factories(), lifetime_policy=ConstantLifetime(4)
        )
        walls = report["hist"].wall_seconds
        assert all(b >= a for a, b in zip(walls, walls[1:]))
        assert report["hist"].throughput > 0
