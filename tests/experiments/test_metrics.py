"""Unit tests for experiment metrics and ratio helpers."""

import pytest

from repro.experiments.metrics import (
    AlgorithmSeries,
    calls_ratio_series,
    downsample,
    final_calls_ratio,
    mean_value_ratio,
    value_ratio_series,
)


def series(name, values, calls, times=None):
    s = AlgorithmSeries(name)
    times = times if times is not None else list(range(len(values)))
    for i, (t, v, c) in enumerate(zip(times, values, calls)):
        s.record(t=t, value=v, calls=c, wall=float(i + 1), edges=(i + 1) * 10)
    return s


class TestAlgorithmSeries:
    def test_aggregates(self):
        s = series("x", [2.0, 4.0], [10, 30])
        assert s.mean_value == 3.0
        assert s.total_calls == 30
        assert s.total_wall_seconds == 2.0
        assert s.throughput == pytest.approx(10.0)

    def test_empty(self):
        s = AlgorithmSeries("empty")
        assert s.mean_value == 0.0
        assert s.total_calls == 0
        assert s.throughput == 0.0


class TestRatios:
    def test_value_ratio_series(self):
        a = series("a", [1.0, 2.0], [1, 2])
        b = series("b", [2.0, 4.0], [1, 2])
        assert value_ratio_series(a, b) == [0.5, 0.5]

    def test_mean_value_ratio(self):
        a = series("a", [1.0, 3.0], [1, 2])
        b = series("b", [2.0, 3.0], [1, 2])
        assert mean_value_ratio(a, b) == pytest.approx(0.75)

    def test_zero_reference_treated_as_parity(self):
        a = series("a", [1.0], [1])
        b = series("b", [0.0], [1])
        assert value_ratio_series(a, b) == [1.0]

    def test_calls_ratio_series(self):
        a = series("a", [1.0, 1.0], [5, 10])
        b = series("b", [1.0, 1.0], [10, 100])
        assert calls_ratio_series(a, b) == [0.5, 0.1]

    def test_final_calls_ratio(self):
        a = series("a", [1.0], [25])
        b = series("b", [1.0], [100])
        assert final_calls_ratio(a, b) == 0.25

    def test_misaligned_series_rejected(self):
        a = series("a", [1.0, 2.0], [1, 2], times=[0, 1])
        b = series("b", [1.0, 2.0], [1, 2], times=[0, 5])
        with pytest.raises(ValueError, match="different query points"):
            value_ratio_series(a, b)


class TestDownsample:
    def test_short_series_unchanged(self):
        assert downsample([1, 2, 3], 5) == [1, 2, 3]

    def test_long_series_reduced(self):
        result = downsample(list(range(100)), 10)
        assert len(result) == 10
        assert result[0] == 0

    def test_invalid_max_points(self):
        with pytest.raises(ValueError):
            downsample([1], 0)
