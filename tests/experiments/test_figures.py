"""Smoke tests for the figure runners (tiny scale, shape assertions)."""

import pytest

from repro.experiments import ablations, figures, figures_baselines


class TestTable1:
    def test_rows_and_formatting(self):
        result = figures.table1(num_events=100, seed=0)
        assert len(result.rows) == 6
        text = result.format_table()
        assert "brightkite" in text
        assert "Table I" in text


class TestFig7:
    def test_shape(self):
        result = figures.fig7(
            datasets=("brightkite",),
            num_events=120,
            L=60,
            p_values=(0.01, 0.05),
            seed=0,
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["value_ratio"] > 0.7
            assert row["calls_ratio"] < 1.0
        # BASIC's calls decrease as p grows (the paper's key efficiency
        # observation).
        assert result.rows[1]["calls_basic"] < result.rows[0]["calls_basic"]


class TestQualityFigures:
    def test_fig8_ordering(self):
        result = figures.fig8(
            datasets=("twitter-hk",), num_events=150, L=80, p=0.02, seed=0,
            epsilons=(0.2,),
        )
        by_algo = {row["algorithm"]: row["mean_value"] for row in result.rows}
        assert by_algo["greedy"] >= by_algo["hist(eps=0.2)"] - 1e-9
        assert by_algo["hist(eps=0.2)"] > by_algo["random"]

    def test_fig9_ratios_bounded(self):
        result = figures.fig9(
            datasets=("brightkite",), num_events=150, L=80, p=0.02, seed=0,
            epsilons=(0.1, 0.3),
        )
        row = result.rows[0]
        assert 0.5 < row["ratio(eps=0.1)"] <= 1.0 + 1e-9
        assert 0.5 < row["ratio(eps=0.3)"] <= 1.0 + 1e-9

    def test_fig10_calls_ratio_below_one(self):
        result = figures.fig10(
            datasets=("gowalla",), num_events=150, L=80, p=0.02, seed=0,
            epsilons=(0.2,),
        )
        assert result.rows[0]["final_calls_ratio"] < 1.0


class TestParameterSweeps:
    def test_fig11_rows(self):
        result = figures.fig11(
            datasets=("brightkite",), num_events=120, k_values=(5, 10),
            L=60, p=0.02, seed=0,
        )
        assert [row["k"] for row in result.rows] == [5, 10]
        for row in result.rows:
            assert row["value_ratio"] > 0.5

    def test_fig12_rows(self):
        result = figures.fig12(
            datasets=("brightkite",), num_events=120, L_values=(40, 80),
            p=0.02, seed=0,
        )
        assert [row["L"] for row in result.rows] == [40, 80]


class TestBaselineFigures:
    def test_fig13_rows(self):
        result = figures_baselines.fig13(
            datasets=("twitter-higgs",), num_events=120,
            k_values=(5,), L_values=(60,), k_fixed=5, L_fixed=60,
            p=0.02, seed=0, query_interval=30,
        )
        assert len(result.rows) == 2  # one k row + one L row
        for row in result.rows:
            for name in ("hist", "imm", "tim+", "dim"):
                assert 0.0 <= row[f"ratio_{name}"] <= 1.5

    def test_fig14_rows(self):
        result = figures_baselines.fig14(
            datasets=("twitter-higgs",), num_events=80,
            k_values=(5,), L_values=(60,), k_fixed=5, L_fixed=60,
            p=0.02, seed=0, query_interval=2,
        )
        for row in result.rows:
            for name in ("hist", "greedy", "dim", "imm", "tim+"):
                assert row[f"tput_{name}"] > 0


class TestAblations:
    def test_head_refinement(self):
        result = ablations.head_refinement(
            datasets=("brightkite",), num_events=100, L=60, p=0.02, seed=0
        )
        by_variant = {row["variant"]: row for row in result.rows}
        assert (
            by_variant["hist+refine"]["value_ratio"]
            >= by_variant["hist"]["value_ratio"] - 0.05
        )

    def test_changed_mode(self):
        result = ablations.changed_mode(
            datasets=("twitter-hk",), num_events=100, L=60, p=0.02, seed=0
        )
        assert {row["mode"] for row in result.rows} == {"ancestors", "sources"}

    def test_epsilon_grid_monotone_calls(self):
        result = ablations.epsilon_grid(
            dataset="gowalla", num_events=100, L=60, p=0.02, seed=0,
            epsilons=(0.1, 0.4),
        )
        calls = [row["calls"] for row in result.rows]
        assert calls[-1] <= calls[0]


class TestCLI:
    def test_main_runs_table1(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1", "--events", "50"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_main_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])
