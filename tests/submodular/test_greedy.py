"""Unit tests for greedy, lazy greedy, and brute force."""

import pytest

from repro.submodular.functions import CoverageFunction
from repro.submodular.greedy import brute_force_optimum, greedy_max, lazy_greedy_max


def coverage_instance():
    sets = [{1, 2, 3}, {3, 4}, {4, 5, 6}, {6}, {7, 8}, {1, 8}]
    cover = CoverageFunction(sets)
    universe = sorted({x for s in sets for x in s})
    return cover, universe


class TestGreedyMax:
    def test_first_pick_is_best_singleton(self):
        cover, universe = coverage_instance()
        result = greedy_max(cover, universe, 1)
        best_single = max(cover.value([x]) for x in universe)
        assert result.value == best_single

    def test_respects_budget(self):
        cover, universe = coverage_instance()
        assert len(greedy_max(cover, universe, 3).nodes) <= 3

    def test_classic_guarantee_on_instance(self):
        cover, universe = coverage_instance()
        for k in (1, 2, 3):
            greedy = greedy_max(cover, universe, k)
            optimum = brute_force_optimum(cover, universe, k)
            assert greedy.value >= (1 - 1 / 2.718281828) * optimum.value

    def test_k_zero(self):
        cover, universe = coverage_instance()
        assert greedy_max(cover, universe, 0).nodes == []

    def test_negative_k(self):
        cover, universe = coverage_instance()
        with pytest.raises(ValueError):
            greedy_max(cover, universe, -1)

    def test_duplicate_candidates_deduped(self):
        cover, universe = coverage_instance()
        result = greedy_max(cover, universe + universe, 2)
        assert len(set(result.nodes)) == len(result.nodes)


class TestLazyGreedyMax:
    def test_identical_to_plain_greedy(self):
        cover, universe = coverage_instance()
        for k in (1, 2, 3, 4):
            plain = greedy_max(cover, universe, k)
            lazy = lazy_greedy_max(cover, universe, k)
            assert lazy.value == plain.value

    def test_fewer_evaluations_without_ties(self):
        # Disjoint sets with strictly distinct weights: marginal gains never
        # change after a pick, so stale CELF bounds stay exact and lazy
        # greedy does n initial + ~1 evaluation per round, while plain
        # greedy pays the full remaining pool every round.
        sets = [{i} for i in range(20)]
        weights = [100.0 - i for i in range(20)]
        cover = CoverageFunction(sets, weights=weights)
        universe = list(range(20))
        plain = greedy_max(cover, universe, 5)
        lazy = lazy_greedy_max(cover, universe, 5)
        assert lazy.value == plain.value
        assert lazy.evaluations < plain.evaluations

    def test_stops_at_zero_gain(self):
        cover = CoverageFunction([{1}, {2}])
        result = lazy_greedy_max(cover, [1, 2, 99], 3)
        assert set(result.nodes) == {1, 2}  # 99 covers nothing

    def test_empty_candidates(self):
        cover, _ = coverage_instance()
        assert lazy_greedy_max(cover, [], 3).nodes == []


class TestBruteForce:
    def test_finds_true_optimum(self):
        # Coverage counts covered *sets*: {1, 3} hits all three.
        cover = CoverageFunction([{1, 2}, {3, 4}, {1, 3}])
        result = brute_force_optimum(cover, [1, 2, 3, 4], 2)
        assert result.value == 3.0

    def test_at_most_k(self):
        cover, universe = coverage_instance()
        assert len(brute_force_optimum(cover, universe, 2).nodes) <= 2

    def test_dominates_greedy(self):
        cover, universe = coverage_instance()
        for k in (1, 2, 3):
            assert (
                brute_force_optimum(cover, universe, k).value
                >= greedy_max(cover, universe, k).value
            )
