"""Unit tests for set-function adapters and coverage."""

import pytest

from repro.influence.oracle import InfluenceOracle
from repro.submodular.functions import CoverageFunction, SpreadFunction
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


class TestSpreadFunction:
    def test_binds_oracle_and_horizon(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 2))
        graph.add_interaction(Interaction("a", "c", 0, 9))
        oracle = InfluenceOracle(graph)
        assert SpreadFunction(oracle).value(["a"]) == 3
        assert SpreadFunction(oracle, min_expiry=5).value(["a"]) == 2


class TestCoverageFunction:
    def test_value_counts_covered_sets(self):
        cover = CoverageFunction([{1, 2}, {2, 3}, {4}])
        assert cover.value([2]) == 2
        assert cover.value([2, 4]) == 3
        assert cover.value([]) == 0

    def test_weighted(self):
        cover = CoverageFunction([{1}, {2}], weights=[5.0, 1.0])
        assert cover.value([1]) == 5.0
        assert cover.value([1, 2]) == 6.0

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            CoverageFunction([{1}], weights=[1.0, 2.0])

    def test_covering_sets_index(self):
        cover = CoverageFunction([{1, 2}, {2}])
        assert cover.covering_sets(2) == [0, 1]
        assert cover.covering_sets(99) == []

    def test_monotone_and_submodular_on_instance(self):
        cover = CoverageFunction([{1, 2}, {2, 3}, {3, 4}, {5}])
        ground = [1, 2, 3, 4, 5]
        # Monotone: adding an element never decreases coverage.
        for s in ([], [1], [1, 3]):
            for x in ground:
                assert cover.value(s + [x]) >= cover.value(s)
        # Submodular: diminishing returns for a nested pair.
        small, large = [1], [1, 3, 4]
        for x in ground:
            gain_small = cover.value(small + [x]) - cover.value(small)
            gain_large = cover.value(large + [x]) - cover.value(large)
            assert gain_small >= gain_large


class TestGreedyCover:
    def test_selects_best_cover(self):
        cover = CoverageFunction([{1, 2}, {2, 3}, {4}, {4, 5}])
        chosen = cover.greedy_cover(2)
        assert cover.value(chosen) == 4.0

    def test_matches_lazy_greedy(self):
        from repro.submodular.greedy import lazy_greedy_max

        sets = [{1, 2, 3}, {3, 4}, {5}, {1, 5}, {2, 6}]
        cover = CoverageFunction(sets)
        universe = sorted({x for s in sets for x in s})
        dedicated = cover.value(cover.greedy_cover(3))
        generic = lazy_greedy_max(cover, universe, 3).value
        assert dedicated == generic

    def test_k_zero(self):
        cover = CoverageFunction([{1}])
        assert cover.greedy_cover(0) == []

    def test_k_larger_than_universe(self):
        cover = CoverageFunction([{1}, {2}])
        chosen = cover.greedy_cover(10)
        assert cover.value(chosen) == 2.0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            CoverageFunction([{1}]).greedy_cover(-1)
