"""Chaos suite: seeded fault plans against the supervised parallel stack.

Every scenario drives real worker processes (or the real ingest writer)
through a deterministic :class:`~repro.parallel.faults.FaultPlan` and
pins the robustness contract:

* results are **bit-identical to serial** under every fault — recovery
  changes *where* a value is computed, never what it is;
* the executor **recovers to sharded mode** when the fault clears
  (worker kills are respawned, publish failures retried);
* the ingest service **never serves an unapplied epoch** — writer death
  replays the journal exactly once and ``top_k`` flags staleness;
* teardown after chaos **leaks no shared-memory segments**.

The CI chaos job runs this module across a seed matrix via
``REPRO_CHAOS_SEED``; the seed feeds the supervisor's backoff jitter and
the synthetic streams, so a failing combination replays exactly.
"""

import asyncio
import os
import random
import time
import warnings

import pytest

from repro.core.tracker import InfluenceTracker
from repro.influence.oracle import InfluenceOracle
from repro.parallel.executor import ShardedOracleExecutor
from repro.parallel.faults import FaultPlan
from repro.parallel.plane import shared_memory_available
from repro.parallel.service import IngestService
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.tdn.lifetimes import GeometricLifetime

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "3"))

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


def plan(spec: str) -> FaultPlan:
    return FaultPlan.parse(f"{spec};seed={SEED}")


def build_graph(seed=None, num_nodes=40, num_events=160):
    rng = random.Random(SEED if seed is None else seed)
    graph = TDNGraph()
    t = 0
    for _ in range(num_events):
        if rng.random() < 0.3:
            t += 1
            graph.advance_to(t)
        u, v = rng.sample(range(num_nodes), 2)
        graph.add_interaction(Interaction(f"n{u}", f"n{v}", t, rng.randint(5, 60)))
    return graph


def assert_no_shm_leak(prefix):
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=f"{prefix}-hdr")


@pytest.fixture(autouse=True)
def quiet_degradation_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


class TestExecutorChaos:
    def test_worker_kill_mid_spread_recovers_and_stays_exact(self):
        """Every incarnation of worker 0 dies on its first task; requests
        keep answering exactly and the supervisor keeps restoring the
        pool within budget."""
        graph = build_graph()
        executor = ShardedOracleExecutor(
            2, min_batch=1, fault_plan=plan("kill=w0:1")
        )
        prefix = None
        try:
            ids = list(range(graph.num_interned))
            saw_death = False
            for round_no in range(12):
                # Distinct payload per round: strikes must not accumulate
                # into a quarantine here (that scenario is below).
                sets = [[i] for i in ids[round_no : round_no + 10]]
                assert executor.spread_counts(graph, sets) == (
                    graph.csr().spread_counts(sets, None)
                )
                report = executor.health_report()
                if report["incidents"].get("WORKER_DEATH", 0) >= 1:
                    saw_death = True
                    break
            assert saw_death, "fault plan never fired (worker 0 got no task)"
            report = executor.health_report()
            assert report["state"] == "sharded"  # absorbed, not degraded
            assert report["pool"]["restarts_used"] >= 1
            # w1 never dies; the fresh w0 incarnation may already have
            # died again, so only the survivor floor is deterministic.
            assert report["pool"]["alive"] >= 1
            prefix = executor._plane.prefix
        finally:
            executor.close()
        if prefix is not None:
            assert_no_shm_leak(prefix)

    def test_poisoned_task_is_quarantined_after_two_kills(self):
        """A task that kills two worker incarnations runs serially,
        is flagged in the health report, and never re-enters the pool."""
        graph = build_graph(seed=SEED + 1)
        executor = ShardedOracleExecutor(
            2, min_batch=1, fault_plan=plan("kill=w0:1,w1:1")
        )
        prefix = None
        try:
            poison = [list(range(min(12, graph.num_interned)))]  # one shard
            expected = graph.csr().spread_counts(poison, None)
            assert executor.spread_counts(graph, poison) == expected
            report = executor.health_report()
            assert report["pool"]["quarantined_tasks"] == 1
            assert report["incidents"].get("WORKER_DEATH", 0) >= 1
            # The second death may still be inside the respawn backoff
            # when the request completes, so only the first recycle is a
            # deterministic charge.
            restarts = report["pool"]["restarts_used"]
            assert restarts >= 1
            # Replaying the poisoned task is served from quarantine:
            # exact, serial, and no further worker is sacrificed to it.
            assert executor.spread_counts(graph, poison) == expected
            assert (
                executor.health_report()["pool"]["restarts_used"] == restarts
            )
            prefix = executor._plane.prefix
        finally:
            executor.close()
        if prefix is not None:
            assert_no_shm_leak(prefix)

    def test_attach_failures_are_retried_transparently(self):
        """Each worker's first plane attach raises; the shards are
        retried and the request never diverges from serial."""
        graph = build_graph(seed=SEED + 2)
        executor = ShardedOracleExecutor(
            2, min_batch=1, fault_plan=plan("attach=w0:1,w1:1")
        )
        try:
            ids = list(range(graph.num_interned))
            for round_no in range(3):
                sets = [[i] for i in ids[round_no : round_no + 12]]
                assert executor.spread_counts(graph, sets) == (
                    graph.csr().spread_counts(sets, None)
                )
            assert executor.parallel_available
        finally:
            executor.close()

    def test_delayed_shard_misses_deadline_then_serial_fallback(self):
        """Both workers sleep through their first task's deadline twice;
        the shards fall back to serial for that request only and the
        pool serves the next request normally."""
        graph = build_graph(seed=SEED + 3)
        executor = ShardedOracleExecutor(
            2,
            min_batch=1,
            task_timeout=0.15,
            fault_plan=plan("delay=w0:1:0.8,w1:1:0.8"),
        )
        try:
            ids = list(range(graph.num_interned))
            sets = [[i] for i in ids[:10]]
            assert executor.spread_counts(graph, sets) == (
                graph.csr().spread_counts(sets, None)
            )
            report = executor.health_report()
            assert report["state"] == "sharded"
            assert report["incidents"].get("TASK_TIMEOUT", 0) >= 1
            # Ordinal 1 is past on both workers: the pool answers again.
            later = [[i] for i in ids[10:22]]
            assert executor.spread_counts(graph, later) == (
                graph.csr().spread_counts(later, None)
            )
        finally:
            executor.close()

    def test_dropped_task_is_retried(self):
        """A silently-dropped task message (no ack, no reply) is caught
        by its deadline and retried; results stay exact."""
        graph = build_graph(seed=SEED + 4)
        executor = ShardedOracleExecutor(
            2, min_batch=1, task_timeout=0.2, fault_plan=plan("drop=w0:1")
        )
        try:
            ids = list(range(graph.num_interned))
            for round_no in range(3):
                sets = [[i] for i in ids[round_no : round_no + 10]]
                assert executor.spread_counts(graph, sets) == (
                    graph.csr().spread_counts(sets, None)
                )
            assert executor.parallel_available
        finally:
            executor.close()

    def test_publish_failure_degrades_then_recovers(self):
        """A failed plane publish serves the request serially, leaves a
        recoverable DEGRADED state, and the next eligible request
        republishes and returns to SHARDED."""
        graph = build_graph(seed=SEED + 5)
        executor = ShardedOracleExecutor(
            2, min_batch=1, fault_plan=plan("publish=2")
        )
        prefix = None
        try:
            ids = list(range(graph.num_interned))
            sets = [[i] for i in ids[:12]]
            # Publish 1 succeeds: sharded.
            assert executor.spread_counts(graph, sets) == (
                graph.csr().spread_counts(sets, None)
            )
            assert executor.health_report()["state"] == "sharded"
            prefix = executor._plane.prefix
            # Mutate the graph so the next request must republish;
            # publish 2 is the injected failure.
            graph.advance_to(graph.time + 1)
            graph.add_interaction(Interaction("n0", "n1", graph.time, 40))
            assert executor.spread_counts(graph, sets) == (
                graph.csr().spread_counts(sets, None)
            )
            report = executor.health_report()
            assert report["state"] == "degraded"
            assert report["reason"] == "PUBLISH_FAILED"
            # After the retry backoff, publish 3 succeeds: recovered.
            time.sleep(0.06)
            assert executor.spread_counts(graph, sets) == (
                graph.csr().spread_counts(sets, None)
            )
            report = executor.health_report()
            assert report["state"] == "sharded"
            assert report["recoveries"] >= 1
            assert report["incidents"].get("PUBLISH_FAILED", 0) >= 1
        finally:
            executor.close()
        if prefix is not None:
            assert_no_shm_leak(prefix)

    def test_restart_budget_exhaustion_halts_permanently(self):
        """When the budget cannot cover another death the executor halts:
        terminal state, resources released, requests still exact."""
        graph = build_graph(seed=SEED + 6)
        prefix = f"rpx-halt{SEED}"  # fixed: the halt releases the plane
        executor = ShardedOracleExecutor(
            2,
            min_batch=1,
            restart_budget=0,
            plane_prefix=prefix,
            fault_plan=plan("kill=w0:1"),
        )
        try:
            ids = list(range(graph.num_interned))
            for round_no in range(12):
                sets = [[i] for i in ids[round_no : round_no + 10]]
                assert executor.spread_counts(graph, sets) == (
                    graph.csr().spread_counts(sets, None)
                )
                if executor.health_report()["state"] == "halted":
                    break
            report = executor.health_report()
            assert report["state"] == "halted"
            assert report["reason"] == "RESTART_BUDGET_EXHAUSTED"
            # Halted is sticky and still serves exactly (serially).
            sets = [[i] for i in ids[:10]]
            assert executor.spread_counts(graph, sets) == (
                graph.csr().spread_counts(sets, None)
            )
        finally:
            executor.close()
        if prefix is not None:
            assert_no_shm_leak(prefix)  # halt released the plane


class TestTrackerChaos:
    def stream(self, num_nodes=30, num_steps=16, per_step=4, max_l=25):
        rng = random.Random(SEED)
        policy = GeometricLifetime(0.08, max_l, seed=SEED + 1)
        batches = []
        for t in range(num_steps):
            batch = []
            for _ in range(rng.randint(1, per_step)):
                u, v = rng.sample(range(num_nodes), 2)
                batch.append(policy.assign(Interaction(f"n{u}", f"n{v}", t)))
            batches.append((t, batch))
        return batches

    def replay(self, name, batches, oracle_factory):
        from repro.core.basic_reduction import BasicReduction
        from repro.core.hist_approx import HistApprox
        from repro.core.sieve_adn import SieveADN

        graph = TDNGraph()
        oracle = oracle_factory(graph)
        algorithm = {
            "sieve-adn": lambda: SieveADN(4, 0.25, graph, oracle),
            "basic-reduction": lambda: BasicReduction(3, 0.3, 25, graph, oracle),
            "hist-approx": lambda: HistApprox(3, 0.3, graph, oracle),
        }[name]()
        trace = []
        for t, batch in batches:
            graph.advance_to(t)
            for interaction in batch:
                graph.add_interaction(interaction)
            algorithm.on_batch(t, batch)
            solution = algorithm.query()
            trace.append((tuple(solution.nodes), solution.value, oracle.calls))
        return trace

    @pytest.mark.parametrize(
        "name", ["sieve-adn", "basic-reduction", "hist-approx"]
    )
    def test_trackers_bit_identical_under_env_fault_plan(self, name, monkeypatch):
        """All three trackers replay bit-identically to serial while the
        ``REPRO_FAULTS`` plan kills, delays and fails attaches under
        them (the acceptance bar of the robustness tentpole)."""
        batches = self.stream()
        serial_trace = self.replay(name, batches, lambda g: InfluenceOracle(g))
        monkeypatch.setenv(
            "REPRO_FAULTS",
            f"kill=w0:5;delay=w1:3:0.05;attach=w0:1;seed={SEED}",
        )
        executor = ShardedOracleExecutor(2, min_batch=1, restart_budget=6)
        prefix = None
        try:
            chaos_trace = self.replay(
                name, batches, lambda g: InfluenceOracle(g, parallel=executor)
            )
            if executor._plane is not None:
                prefix = executor._plane.prefix
        finally:
            executor.close()
        assert chaos_trace == serial_trace
        if prefix is not None:
            assert_no_shm_leak(prefix)


class TestIngestChaos:
    def make_tracker(self, **kwargs):
        return InfluenceTracker(
            "sieve-adn",
            k=3,
            epsilon=0.3,
            lifetime_policy=GeometricLifetime(0.05, 60, seed=SEED),
            **kwargs,
        )

    def batches(self, count=6):
        rng = random.Random(SEED + 9)
        return [
            (
                t,
                [
                    (f"u{rng.randrange(6)}", f"v{rng.randrange(9)}", None),
                    (f"v{rng.randrange(9)}", f"w{rng.randrange(4)}", None),
                ],
            )
            for t in range(count)
        ]

    def test_writer_death_replays_journal_exactly_once(self):
        """The writer dies before applying batch 2; the restarted writer
        replays the journal and the final state matches direct stepping
        — no batch lost, none double-applied."""
        batches = self.batches()

        async def run():
            tracker = self.make_tracker()
            service = IngestService(tracker, fault_plan=plan("writer=2"))
            await service.start()
            for t, batch in batches:
                await service.submit(t, batch)
            answer = await service.drain()
            health = service.health()
            await service.close()
            return answer, health

        answer, health = asyncio.run(run())
        reference = self.make_tracker()
        for t, batch in batches:
            solution = reference.step(t, batch)
        assert answer.epoch == len(batches)
        assert answer.nodes == tuple(solution.nodes)
        assert answer.value == float(solution.value)
        assert not answer.stale and answer.lag == 0
        assert health["writer_restarts"] == 1
        assert health["incidents"].get("WRITER_DEATH", 0) >= 1
        assert health["journal_depth"] == 0

    def test_writer_budget_exhaustion_serves_stale_topk(self):
        """With no restart budget the first writer death poisons the
        service — but ``top_k`` still answers from the last consistent
        epoch, flagged stale with the unapplied count."""

        async def run():
            tracker = self.make_tracker()
            service = IngestService(
                tracker,
                writer_restart_budget=0,
                fault_plan=plan("writer=1"),
            )
            await service.start()
            await service.submit(0, [("a", "b", None)])
            with pytest.raises(RuntimeError, match="ingest consumer failed"):
                await service.drain()
            answer = await service.top_k()
            health = service.health()
            with pytest.raises(RuntimeError):
                await service.close()
            return answer, health

        answer, health = asyncio.run(run())
        assert answer.epoch == 0  # the unapplied epoch was never served
        assert answer.stale and answer.lag == 1
        assert health["state"] == "degraded"
        assert health["journal_depth"] == 1  # still journaled, never applied
        assert health["failure"] is not None
