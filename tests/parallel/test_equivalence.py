"""Sharded-vs-serial equivalence: the tentpole acceptance bar.

For every tracker in the paper (SIEVEADN, BASICREDUCTION, HISTAPPROX) a
seeded stream is replayed twice — once on a serial oracle, once with the
sharded executor (``REPRO_TEST_WORKERS`` processes, default 2; the tier-1
CI matrix runs this suite with ``workers=2`` on Linux) — and every
per-step solution, spread value and cumulative oracle-call count must be
*bit-identical*.  ``min_batch=1`` forces even tiny batches through the
pool, so the parallel path is exercised on every sweep, not just the
large ones.

One executor (one pool, one plane) is shared across the whole module via
a fixture: the pool is the expensive part, and sharing it also pins the
plane's graph/version tracking across many graphs.
"""

import os
import random

import numpy as np
import pytest

from repro.core.basic_reduction import BasicReduction
from repro.core.hist_approx import HistApprox
from repro.core.sieve_adn import SieveADN
from repro.influence.oracle import InfluenceOracle
from repro.influence.weighted import WeightedInfluenceOracle
from repro.parallel.executor import ShardedOracleExecutor
from repro.parallel.plane import shared_memory_available
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.tdn.lifetimes import GeometricLifetime

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


@pytest.fixture(scope="module")
def executor():
    pool = ShardedOracleExecutor(WORKERS, min_batch=1)
    yield pool
    pool.close()


def stream_batches(seed=7, num_nodes=36, num_steps=30, per_step=4, max_l=25):
    rng = random.Random(seed)
    policy = GeometricLifetime(0.08, max_l, seed=seed + 1)
    batches = []
    for t in range(num_steps):
        batch = []
        for _ in range(rng.randint(1, per_step)):
            u, v = rng.sample(range(num_nodes), 2)
            batch.append(policy.assign(Interaction(f"n{u}", f"n{v}", t)))
        batches.append((t, batch))
    return batches


def make_algorithm(name, graph, oracle):
    if name == "sieve-adn":
        return SieveADN(4, 0.25, graph, oracle)
    if name == "basic-reduction":
        return BasicReduction(3, 0.3, 25, graph, oracle)
    if name == "hist-approx":
        return HistApprox(3, 0.3, graph, oracle)
    raise ValueError(name)


def replay(name, batches, oracle_factory):
    graph = TDNGraph()
    oracle = oracle_factory(graph)
    algorithm = make_algorithm(name, graph, oracle)
    trace = []
    for t, batch in batches:
        graph.advance_to(t)
        for interaction in batch:
            graph.add_interaction(interaction)
        algorithm.on_batch(t, batch)
        solution = algorithm.query()
        trace.append((tuple(solution.nodes), solution.value, oracle.calls))
    return trace


@pytest.mark.parametrize("name", ["sieve-adn", "basic-reduction", "hist-approx"])
def test_tracker_bit_identical_under_sharding(name, executor):
    batches = stream_batches()
    serial_trace = replay(name, batches, lambda g: InfluenceOracle(g))
    sharded_trace = replay(
        name, batches, lambda g: InfluenceOracle(g, parallel=executor)
    )
    assert sharded_trace == serial_trace


@pytest.mark.parametrize("name", ["sieve-adn", "basic-reduction", "hist-approx"])
def test_tracker_bit_identical_under_version_memo(name, executor):
    """The historical wholesale-clear memo policy shards identically too."""
    batches = stream_batches(seed=19)
    serial_trace = replay(
        name, batches, lambda g: InfluenceOracle(g, memo_mode="version")
    )
    sharded_trace = replay(
        name,
        batches,
        lambda g: InfluenceOracle(g, memo_mode="version", parallel=executor),
    )
    assert sharded_trace == serial_trace


WEIGHT_SPECS = {
    # Dense mapping -> the weighted bit-plane path: workers fold the
    # published shared-memory weight array and return 64-wide weight sums.
    "mapping": lambda: {f"n{i}": float(1 + (i % 5)) for i in range(36)},
    # No mapping -> uniform weights ride the counted bit-plane sweep.
    "uniform": lambda: None,
    # A callable must stay in-process: workers return reachable id sets.
    "callable": lambda: (lambda node: float(1 + (int(str(node)[1:]) % 4))),
}


@pytest.mark.parametrize("spec", sorted(WEIGHT_SPECS))
def test_weighted_oracle_bit_identical_under_sharding(spec, executor):
    batches = stream_batches(seed=41)

    def run(oracle_factory):
        graph = TDNGraph()
        oracle = oracle_factory(graph)
        sieve = SieveADN(3, 0.3, graph, oracle)
        trace = []
        for t, batch in batches:
            graph.advance_to(t)
            for interaction in batch:
                graph.add_interaction(interaction)
            sieve.on_batch(t, batch)
            solution = sieve.query()
            trace.append((tuple(solution.nodes), solution.value, oracle.calls))
        return trace

    weights = WEIGHT_SPECS[spec]()
    serial_trace = run(lambda g: WeightedInfluenceOracle(g, weights))
    sharded_trace = run(
        lambda g: WeightedInfluenceOracle(g, weights, parallel=executor)
    )
    assert sharded_trace == serial_trace
    # The parity must come from the pool actually answering, not from a
    # silent serial fallback.
    assert executor.degraded is None


@pytest.mark.parametrize("spec", sorted(WEIGHT_SPECS))
def test_weighted_spread_many_matches_spread_loop(spec, executor):
    """Batched protocol == loop of spread: values, memo and call counts.

    The candidate list deliberately exceeds one 64-set bit-plane chunk,
    so the sharded weighted path crosses plane boundaries and shard
    splits while staying bit-identical to the sequential loop.
    """
    batches = stream_batches(seed=53)
    graph = TDNGraph()
    for t, batch in batches:
        graph.advance_to(t)
        for interaction in batch:
            graph.add_interaction(interaction)
    nodes = sorted(graph.node_set(), key=repr)
    sets = [(n,) for n in nodes] + [tuple(nodes[:3])] + [(nodes[0],)]  # dup hits
    sets = sets + [(a, b) for a in nodes[:9] for b in nodes[9:18]]  # > 64 sets
    assert len(sets) > 64

    def make(**kwargs):
        return WeightedInfluenceOracle(graph, WEIGHT_SPECS[spec](), **kwargs)

    loop = make()
    loop_values = [loop.spread(s) for s in sets]

    for oracle in (make(), make(parallel=executor)):
        values = oracle.spread_many(sets)
        assert values == loop_values
        assert oracle.calls == loop.calls
    assert executor.degraded is None


def test_sharded_weighted_sums_are_worker_computed(executor):
    """The executor's weighted path returns the serial engine's exact
    floats while the pool is demonstrably up (64-wide weight vectors
    cross the pipe, not reachable-id sets)."""
    batches = stream_batches(seed=67)
    graph = TDNGraph()
    for t, batch in batches:
        graph.advance_to(t)
        for interaction in batch:
            graph.add_interaction(interaction)
    ids = list(range(graph.num_interned))
    weights = np.asarray([1.0 + (i % 6) * 0.25 for i in ids], dtype=np.float64)
    id_sets = [[i] for i in ids] + [ids[:4], []]
    serial_sums = graph.csr().weighted_spread_sums(id_sets, None, weights)
    sharded_sums = executor.weighted_spread_sums(
        graph, id_sets, None, weights=weights, weights_key="wtest"
    )
    assert sharded_sums == serial_sums
    assert executor.degraded is None and executor.pool_running

    # Releasing the key unlinks its segment, is idempotent, and the next
    # weighted request simply republishes.
    executor.release_weights("wtest")
    executor.release_weights("wtest")
    again = executor.weighted_spread_sums(
        graph, id_sets, None, weights=weights, weights_key="wtest"
    )
    assert again == serial_sums
    assert executor.degraded is None
    executor.release_weights("wtest")


def test_closed_weighted_oracle_releases_its_weight_segment(executor):
    """A short-lived oracle must not leak its segment into a shared,
    long-lived executor (close() and GC both release it)."""
    batches = stream_batches(seed=71)
    graph = TDNGraph()
    for t, batch in batches:
        graph.advance_to(t)
        for interaction in batch:
            graph.add_interaction(interaction)
    nodes = sorted(graph.node_set(), key=repr)
    weights = {n: float(2 + i % 3) for i, n in enumerate(nodes)}

    oracle = WeightedInfluenceOracle(graph, weights, parallel=executor)
    oracle.spread_many([(n,) for n in nodes])
    key = oracle._weights_key  # noqa: SLF001 - registry probe
    assert key in executor._weights  # noqa: SLF001
    oracle.close()
    assert key not in executor._weights  # noqa: SLF001
    assert executor.degraded is None  # shared pool untouched by close()

    import gc

    oracle = WeightedInfluenceOracle(graph, weights, parallel=executor)
    oracle.spread_many([(n,) for n in nodes])
    key = oracle._weights_key  # noqa: SLF001
    assert key in executor._weights  # noqa: SLF001
    del oracle
    gc.collect()
    assert key not in executor._weights  # noqa: SLF001

    # An oracle used again after close() republishes — and the re-armed
    # release hook must still fire on collection.  max_cache_entries=0
    # forces real evaluations, so the post-close batch must republish.
    oracle = WeightedInfluenceOracle(
        graph, weights, parallel=executor, max_cache_entries=0
    )
    oracle.spread_many([(n,) for n in nodes])
    oracle.close()
    key = oracle._weights_key  # noqa: SLF001
    assert key not in executor._weights  # noqa: SLF001
    reuse_values = oracle.spread_many([(n,) for n in nodes[:12]])
    serial = WeightedInfluenceOracle(graph, weights)
    assert reuse_values == serial.spread_many([(n,) for n in nodes[:12]])
    assert key in executor._weights  # noqa: SLF001
    del oracle
    gc.collect()
    assert key not in executor._weights  # noqa: SLF001
