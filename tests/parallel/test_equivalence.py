"""Sharded-vs-serial equivalence: the tentpole acceptance bar.

For every tracker in the paper (SIEVEADN, BASICREDUCTION, HISTAPPROX) a
seeded stream is replayed twice — once on a serial oracle, once with the
sharded executor (``REPRO_TEST_WORKERS`` processes, default 2; the tier-1
CI matrix runs this suite with ``workers=2`` on Linux) — and every
per-step solution, spread value and cumulative oracle-call count must be
*bit-identical*.  ``min_batch=1`` forces even tiny batches through the
pool, so the parallel path is exercised on every sweep, not just the
large ones.

One executor (one pool, one plane) is shared across the whole module via
a fixture: the pool is the expensive part, and sharing it also pins the
plane's graph/version tracking across many graphs.
"""

import os
import random

import pytest

from repro.core.basic_reduction import BasicReduction
from repro.core.hist_approx import HistApprox
from repro.core.sieve_adn import SieveADN
from repro.influence.oracle import InfluenceOracle
from repro.influence.weighted import WeightedInfluenceOracle
from repro.parallel.executor import ShardedOracleExecutor
from repro.parallel.plane import shared_memory_available
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.tdn.lifetimes import GeometricLifetime

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


@pytest.fixture(scope="module")
def executor():
    pool = ShardedOracleExecutor(WORKERS, min_batch=1)
    yield pool
    pool.close()


def stream_batches(seed=7, num_nodes=36, num_steps=30, per_step=4, max_l=25):
    rng = random.Random(seed)
    policy = GeometricLifetime(0.08, max_l, seed=seed + 1)
    batches = []
    for t in range(num_steps):
        batch = []
        for _ in range(rng.randint(1, per_step)):
            u, v = rng.sample(range(num_nodes), 2)
            batch.append(policy.assign(Interaction(f"n{u}", f"n{v}", t)))
        batches.append((t, batch))
    return batches


def make_algorithm(name, graph, oracle):
    if name == "sieve-adn":
        return SieveADN(4, 0.25, graph, oracle)
    if name == "basic-reduction":
        return BasicReduction(3, 0.3, 25, graph, oracle)
    if name == "hist-approx":
        return HistApprox(3, 0.3, graph, oracle)
    raise ValueError(name)


def replay(name, batches, oracle_factory):
    graph = TDNGraph()
    oracle = oracle_factory(graph)
    algorithm = make_algorithm(name, graph, oracle)
    trace = []
    for t, batch in batches:
        graph.advance_to(t)
        for interaction in batch:
            graph.add_interaction(interaction)
        algorithm.on_batch(t, batch)
        solution = algorithm.query()
        trace.append((tuple(solution.nodes), solution.value, oracle.calls))
    return trace


@pytest.mark.parametrize("name", ["sieve-adn", "basic-reduction", "hist-approx"])
def test_tracker_bit_identical_under_sharding(name, executor):
    batches = stream_batches()
    serial_trace = replay(name, batches, lambda g: InfluenceOracle(g))
    sharded_trace = replay(
        name, batches, lambda g: InfluenceOracle(g, parallel=executor)
    )
    assert sharded_trace == serial_trace


@pytest.mark.parametrize("name", ["sieve-adn", "basic-reduction", "hist-approx"])
def test_tracker_bit_identical_under_version_memo(name, executor):
    """The historical wholesale-clear memo policy shards identically too."""
    batches = stream_batches(seed=19)
    serial_trace = replay(
        name, batches, lambda g: InfluenceOracle(g, memo_mode="version")
    )
    sharded_trace = replay(
        name,
        batches,
        lambda g: InfluenceOracle(g, memo_mode="version", parallel=executor),
    )
    assert sharded_trace == serial_trace


def test_weighted_oracle_bit_identical_under_sharding(executor):
    batches = stream_batches(seed=41)
    weights = {f"n{i}": float(1 + (i % 5)) for i in range(36)}

    def run(oracle_factory):
        graph = TDNGraph()
        oracle = oracle_factory(graph)
        sieve = SieveADN(3, 0.3, graph, oracle)
        trace = []
        for t, batch in batches:
            graph.advance_to(t)
            for interaction in batch:
                graph.add_interaction(interaction)
            sieve.on_batch(t, batch)
            solution = sieve.query()
            trace.append((tuple(solution.nodes), solution.value, oracle.calls))
        return trace

    serial_trace = run(lambda g: WeightedInfluenceOracle(g, weights))
    sharded_trace = run(
        lambda g: WeightedInfluenceOracle(g, weights, parallel=executor)
    )
    assert sharded_trace == serial_trace


def test_weighted_spread_many_matches_spread_loop(executor):
    """Batched protocol == loop of spread: values, memo and call counts."""
    batches = stream_batches(seed=53)
    graph = TDNGraph()
    for t, batch in batches:
        graph.advance_to(t)
        for interaction in batch:
            graph.add_interaction(interaction)
    nodes = sorted(graph.node_set(), key=repr)
    sets = [(n,) for n in nodes] + [tuple(nodes[:3])] + [(nodes[0],)]  # dup hits

    loop = WeightedInfluenceOracle(graph, {nodes[0]: 3.5})
    loop_values = [loop.spread(s) for s in sets]

    for oracle in (
        WeightedInfluenceOracle(graph, {nodes[0]: 3.5}),
        WeightedInfluenceOracle(graph, {nodes[0]: 3.5}, parallel=executor),
    ):
        values = oracle.spread_many(sets)
        assert values == loop_values
        assert oracle.calls == loop.calls
