"""Unit tests for the supervision layer: ladder, supervisor, fault plans.

The chaos suite (:mod:`tests.parallel.test_faults`) exercises these
components through real worker processes; this module pins their contracts
in isolation — injected clocks instead of sleeps, fake processes instead
of ``multiprocessing`` — so every edge (backoff windows, budget
arithmetic, warning dedupe, teardown idempotency) is deterministic.
"""

import gc
import random
import warnings

import pytest

from repro.parallel.degradation import (
    TERMINAL_REASONS,
    DegradationLadder,
    DegradationReason,
    DegradationState,
)
from repro.parallel.executor import ShardedOracleExecutor
from repro.parallel.faults import FaultPlan, WorkerFaults
from repro.parallel.plane import SharedCSRPlane, shared_memory_available
from repro.parallel.supervisor import QUARANTINE_STRIKES, WorkerSupervisor
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


class Clock:
    """Injectable monotonic clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# DegradationLadder
# ----------------------------------------------------------------------
class TestDegradationLadder:
    def make(self, **kwargs):
        clock = Clock()
        kwargs.setdefault("clock", clock)
        return DegradationLadder(**kwargs), clock

    def test_starts_sharded_and_healthy(self):
        ladder, _ = self.make()
        assert ladder.state is DegradationState.SHARDED
        assert ladder.healthy and not ladder.halted
        assert not ladder.can_attempt_recovery()

    def test_recoverable_degrade_then_recover(self):
        ladder, clock = self.make()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            ladder.degrade(
                DegradationReason.PUBLISH_FAILED, "disk full", retry_delay=5.0
            )
        assert ladder.state is DegradationState.DEGRADED
        assert not ladder.healthy and not ladder.halted
        assert not ladder.can_attempt_recovery()  # backoff pending
        clock.now += 5.0
        assert ladder.can_attempt_recovery()
        ladder.recover("publish succeeded")
        assert ladder.healthy
        assert ladder.reason is None and ladder.detail == ""
        assert ladder.recoveries == 1

    @pytest.mark.parametrize("reason", sorted(TERMINAL_REASONS, key=lambda r: r.name))
    def test_terminal_reasons_halt_and_stick(self, reason):
        ladder, clock = self.make()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            ladder.degrade(reason)
            assert ladder.halted
            # Sticky: later degrades and recovers are no-ops.
            ladder.degrade(DegradationReason.WORKER_DEATH, "too late")
        assert ladder.reason is reason
        ladder.recover()
        assert ladder.halted
        clock.now += 1e9
        assert not ladder.can_attempt_recovery()

    def test_note_incident_counts_without_moving_state(self):
        ladder, _ = self.make()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            ladder.note_incident(DegradationReason.TASK_TIMEOUT, "slow shard")
            ladder.note_incident(DegradationReason.TASK_TIMEOUT)
        assert ladder.healthy  # incidents are absorbed faults
        report = ladder.report()
        assert report["incidents"] == {"TASK_TIMEOUT": 2}
        assert report["state"] == "sharded"

    def test_warnings_are_deduped_per_reason_per_interval(self):
        ladder, clock = self.make(warn_interval=300.0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ladder.note_incident(DegradationReason.WORKER_DEATH, "w0 died")
            ladder.note_incident(DegradationReason.WORKER_DEATH, "w0 died again")
            # A different reason warns independently.
            ladder.note_incident(DegradationReason.TASK_TIMEOUT)
            clock.now += 299.0
            ladder.note_incident(DegradationReason.WORKER_DEATH)
            clock.now += 1.0  # interval elapsed: warn again
            ladder.note_incident(DegradationReason.WORKER_DEATH)
        texts = [str(w.message) for w in caught]
        assert len(texts) == 3
        assert sum("WORKER_DEATH" in t for t in texts) == 2
        assert sum("TASK_TIMEOUT" in t for t in texts) == 1
        # Warnings carry the reason, the detail and a recovery hint.
        assert "w0 died" in texts[0]
        assert "respawned within the restart budget" in texts[0]

    def test_silent_reasons_never_warn(self):
        ladder, _ = self.make()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ladder.degrade(DegradationReason.SINGLE_WORKER)
        assert caught == []

    def test_transition_history_is_bounded(self):
        ladder, _ = self.make(history_limit=4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for _ in range(10):
                ladder.note_incident(DegradationReason.WORKER_ERROR)
        assert len(ladder.report()["transitions"]) == 4


# ----------------------------------------------------------------------
# WorkerSupervisor
# ----------------------------------------------------------------------
class FakeProc:
    def __init__(self, index, events):
        self.index = index
        self.alive = True
        self._events = events

    def is_alive(self):
        return self.alive

    def terminate(self):
        self.alive = False
        self._events.append(("terminate", self.index))

    def join(self, timeout=None):
        self._events.append(("join", self.index))


class TestWorkerSupervisor:
    def make(self, workers=2, **kwargs):
        events = []
        clock = Clock()

        def spawn(index):
            events.append(("spawn", index))
            return FakeProc(index, events)

        def reset():
            events.append(("reset",))

        kwargs.setdefault("seed", 11)
        supervisor = WorkerSupervisor(
            spawn, workers, clock=clock, reset=reset, **kwargs
        )
        return supervisor, events, clock

    def test_start_spawns_the_pool_without_charging_budget(self):
        supervisor, events, _ = self.make()
        supervisor.start()
        assert events == [("spawn", 0), ("spawn", 1)]
        assert supervisor.restarts_used == 0
        assert supervisor.all_alive()
        assert supervisor.respawn_dead() == "ok"  # nothing dead: no-op
        assert events == [("spawn", 0), ("spawn", 1)]

    def test_respawn_recycles_whole_pool_charging_only_the_dead(self):
        supervisor, events, _ = self.make()
        supervisor.start()
        first = dict(supervisor.procs)
        first[0].alive = False
        assert supervisor.dead_workers() == [0]
        events.clear()
        assert supervisor.respawn_dead() == "ok"
        # Survivors are terminated for queue hygiene, the reset hook runs
        # between teardown and respawn, and only the dead are charged.
        assert events == [
            ("terminate", 1),
            ("join", 0),
            ("join", 1),
            ("reset",),
            ("spawn", 0),
            ("spawn", 1),
        ]
        assert supervisor.restarts_used == 1
        assert supervisor.all_alive()
        assert supervisor.procs[0] is not first[0]
        assert supervisor.procs[1] is not first[1]  # recycled too

    def test_backoff_window_defers_then_allows_respawn(self):
        supervisor, _, clock = self.make(backoff_base=0.5, backoff_cap=8.0)
        supervisor.start()
        supervisor.procs[0].alive = False
        assert supervisor.respawn_dead() == "ok"
        # The fresh incarnation dies immediately: inside the window.
        supervisor.procs[0].alive = False
        assert supervisor.respawn_dead() == "waiting"
        assert supervisor.restarts_used == 1  # waiting charges nothing
        clock.now += 8.0 * 1.5  # past any jittered delay
        assert supervisor.respawn_dead() == "ok"
        assert supervisor.restarts_used == 2

    def test_note_success_resets_the_backoff_ramp(self):
        supervisor, _, _ = self.make(backoff_base=1.0, backoff_cap=60.0)
        supervisor.start()
        supervisor.procs[0].alive = False
        assert supervisor.respawn_dead() == "ok"
        supervisor.note_success()  # a clean round-trip heals the ramp
        supervisor.procs[1].alive = False
        assert supervisor.respawn_dead() == "ok"  # no waiting window

    def test_budget_exhaustion_is_detected_before_spending(self):
        supervisor, events, _ = self.make(restart_budget=1)
        supervisor.start()
        for proc in supervisor.procs.values():
            proc.alive = False
        events.clear()
        # Two dead, budget one: refuse without partial respawn.
        assert supervisor.respawn_dead() == "exhausted"
        assert supervisor.restarts_used == 0
        assert events == []

    def test_jitter_is_deterministic_per_seed(self):
        first, _, _ = self.make(seed=23)
        second, _, _ = self.make(seed=23)
        for supervisor in (first, second):
            supervisor.start()
            supervisor.procs[0].alive = False
            supervisor.respawn_dead()
        assert first._respawn_at == second._respawn_at

    def test_strikes_quarantine_after_two_deaths(self):
        supervisor, _, _ = self.make()
        key = ("spread", "[[1], [2]]", 5.0)
        assert supervisor.strike(key) == 1
        assert not supervisor.is_quarantined(key)
        assert supervisor.strike(key) == QUARANTINE_STRIKES
        assert supervisor.is_quarantined(key)
        assert not supervisor.is_quarantined(("other", "[]", 0.0))
        assert supervisor.report()["quarantined_tasks"] == 1

    def test_report_reflects_liveness(self):
        supervisor, _, _ = self.make(restart_budget=7)
        supervisor.start()
        supervisor.procs[1].alive = False
        assert supervisor.report() == {
            "workers": 2,
            "alive": 1,
            "restarts_used": 0,
            "restart_budget": 7,
            "quarantined_tasks": 0,
        }


# ----------------------------------------------------------------------
# FaultPlan grammar
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_full_spec_roundtrip(self):
        plan = FaultPlan.parse(
            "kill=w0:2,w1:1;delay=w1:3:0.5;drop=w0:1;attach=w1:1;"
            "publish=2;writer=1,4;seed=7"
        )
        assert plan.kills == {0: {2}, 1: {1}}
        assert plan.delays == {1: {3: 0.5}}
        assert plan.drops == {0: {1}}
        assert plan.attach_failures == {1: {1}}
        assert plan.publish_failures == {2}
        assert plan.writer_kills == {1, 4}
        assert plan.seed == 7

    def test_empty_and_whitespace_entries_are_ignored(self):
        plan = FaultPlan.parse(" kill=w0:1 ; ;; seed=3 ")
        assert plan.kills == {0: {1}}
        assert plan.seed == 3

    @pytest.mark.parametrize(
        "spec",
        [
            "kill=x0:1",  # bad site
            "kill=w0:0",  # ordinals are 1-based
            "kill=w0:abc",
            "delay=w0:1",  # missing seconds
            "publish=zero",
            "frobnicate=w0:1",  # unknown kind
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "   ")
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "kill=w1:2")
        plan = FaultPlan.from_env()
        assert plan is not None and plan.kills == {1: {2}}

    def test_for_worker_is_none_for_untouched_workers(self):
        plan = FaultPlan.parse("kill=w0:1;delay=w2:1:0.1")
        assert plan.for_worker(1) is None
        faults = plan.for_worker(0)
        assert faults is not None and faults.kill_at == frozenset({1})

    def test_publish_counter_fires_exactly_at_its_ordinal(self):
        plan = FaultPlan.parse("publish=2")
        assert [plan.next_publish_fails() for _ in range(4)] == [
            False,
            True,
            False,
            False,
        ]

    def test_worker_faults_count_per_incarnation(self):
        faults = WorkerFaults(
            kill_at=frozenset({2}),
            delay_at={3: 0.25},
            drop_at=frozenset({1}),
            attach_fail_at=frozenset({1}),
        )
        assert faults.next_task() == 1
        assert faults.should_drop(1) and not faults.should_kill(1)
        assert faults.next_task() == 2
        assert faults.should_kill(2)
        assert faults.delay_for(faults.next_task()) == 0.25
        assert faults.next_attach_fails()  # attach #1 raises
        assert not faults.next_attach_fails()
        # A respawned incarnation gets a fresh schedule object, so the
        # same ordinals re-fire (what the quarantine machinery relies on).
        fresh = WorkerFaults(kill_at=frozenset({2}))
        assert fresh.next_task() == 1


# ----------------------------------------------------------------------
# Teardown idempotency / crash safety
# ----------------------------------------------------------------------
def tiny_graph():
    rng = random.Random(5)
    graph = TDNGraph()
    for t in range(4):
        graph.advance_to(t)
        for _ in range(8):
            u, v = rng.sample(range(12), 2)
            graph.add_interaction(Interaction(f"n{u}", f"n{v}", t, 30))
    return graph


class TestTeardownSafety:
    def test_double_close_without_pool(self):
        executor = ShardedOracleExecutor(2)
        executor.close()
        executor.close()
        assert executor.degraded is not None

    def test_close_after_failed_init_is_a_noop(self):
        # Simulate __init__ dying before any attribute existed.
        husk = ShardedOracleExecutor.__new__(ShardedOracleExecutor)
        husk.close()  # must not raise

    def test_init_validation_leaves_a_closeable_instance(self):
        with pytest.raises(ValueError):
            ShardedOracleExecutor(-1)

    @pytest.mark.skipif(
        not shared_memory_available(), reason="POSIX shared memory unavailable"
    )
    def test_double_close_with_live_pool(self):
        from multiprocessing import shared_memory

        graph = tiny_graph()
        executor = ShardedOracleExecutor(2, min_batch=1)
        sets = [[i] for i in range(graph.num_interned)]
        assert executor.spread_counts(graph, sets) == (
            graph.csr().spread_counts(sets, None)
        )
        prefix = executor._plane.prefix
        executor.close()
        executor.close()  # second close: clean no-op
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=f"{prefix}-hdr")
        # A closed executor still serves (serially, exactly).
        assert executor.spread_counts(graph, sets) == (
            graph.csr().spread_counts(sets, None)
        )

    @pytest.mark.skipif(
        not shared_memory_available(), reason="POSIX shared memory unavailable"
    )
    def test_finalizer_and_close_do_not_race(self):
        """close() then collection: the finalizer must not double-free."""
        graph = tiny_graph()
        executor = ShardedOracleExecutor(2, min_batch=1)
        sets = [[i] for i in range(graph.num_interned)]
        executor.spread_counts(graph, sets)
        executor.close()
        del executor
        gc.collect()  # the detached finalizer must be a no-op

    @pytest.mark.skipif(
        not shared_memory_available(), reason="POSIX shared memory unavailable"
    )
    def test_abandoned_executor_is_collected_cleanly(self):
        from multiprocessing import shared_memory

        graph = tiny_graph()
        executor = ShardedOracleExecutor(2, min_batch=1)
        sets = [[i] for i in range(graph.num_interned)]
        executor.spread_counts(graph, sets)
        prefix = executor._plane.prefix
        del executor
        gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=f"{prefix}-hdr")

    @pytest.mark.skipif(
        not shared_memory_available(), reason="POSIX shared memory unavailable"
    )
    def test_plane_double_close(self):
        plane = SharedCSRPlane()
        plane.publish(tiny_graph())
        plane.close()
        plane.close()
        with pytest.raises(RuntimeError):
            plane.publish(tiny_graph())
