"""Thread-mode executor: equivalence, mode resolution, fault fallback.

Thread mode is the degradation-ladder rung the native backend unlocks:
shards run over per-thread kernel clones of the same in-process arrays,
so there is no spawn, no shared-memory plane and no pickling.  The
correctness bar is identical to process mode — bit-identical to serial
on every surface — and must hold under the *python* backend too (forced
``mode="threads"`` is slower there, never wrong), which is what lets
this whole file run without numba.
"""

import random
import warnings

import numpy as np
import pytest

from repro.kernels import resolve_fold
from repro.parallel.degradation import DegradationReason
from repro.parallel.executor import EXECUTOR_MODES, ShardedOracleExecutor
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction

WORKERS = 3


def build_graph(seed=17, num_nodes=60, num_events=400):
    rng = random.Random(seed)
    graph = TDNGraph()
    t = 0
    for _ in range(num_events):
        if rng.random() < 0.25:
            t += 1
            graph.advance_to(t)
        u, v = rng.sample(range(num_nodes), 2)
        graph.add_interaction(Interaction(f"n{u}", f"n{v}", t, rng.randint(3, 60)))
    return graph


@pytest.fixture
def threaded():
    executor = ShardedOracleExecutor(WORKERS, mode="threads")
    yield executor
    executor.close()


class TestModeResolution:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            ShardedOracleExecutor(2, mode="fibers")
        assert EXECUTOR_MODES == ("processes", "threads", "auto")

    def test_forced_threads_reported_in_health(self, threaded):
        graph = build_graph()
        sets = [[i] for i in range(graph.num_interned)]
        threaded.spread_counts(graph, sets)
        report = threaded.health_report()
        assert report["mode"] == "threads"
        assert report["state"] == "sharded"

    def test_auto_is_deferred_until_first_query(self):
        executor = ShardedOracleExecutor(2, mode="auto")
        assert executor.health_report()["mode"] == "auto"
        graph = build_graph(num_events=60)
        executor.spread_counts(graph, [[0]])
        # Resolved now: threads iff the native backend actually probes in.
        assert executor.health_report()["mode"] in ("processes", "threads")
        executor.close()

    def test_threads_never_start_processes(self, threaded):
        graph = build_graph()
        sets = [[i] for i in range(graph.num_interned)]
        threaded.spread_counts(graph, sets)
        assert threaded._procs == []

    def test_single_worker_degrades_serially(self):
        executor = ShardedOracleExecutor(1, mode="threads")
        graph = build_graph()
        sets = [[i] for i in range(graph.num_interned)]
        assert executor.spread_counts(graph, sets) == graph.csr().spread_counts(
            sets, None
        )
        assert executor.health_report()["reason"] == "SINGLE_WORKER"
        executor.close()


class TestSerialEquivalence:
    def test_spread_counts_match_serial(self, threaded):
        graph = build_graph()
        serial = graph.csr()
        sets = [[i] for i in range(graph.num_interned)]
        assert threaded.spread_counts(graph, sets) == serial.spread_counts(
            sets, None
        )
        horizon = float(graph.time + 9)
        assert threaded.spread_counts(
            graph, sets, horizon
        ) == serial.spread_counts(sets, horizon)

    def test_reachable_ids_match_serial(self, threaded):
        graph = build_graph()
        serial = graph.csr()
        sets = [[i, (i + 7) % graph.num_interned] for i in range(30)]
        assert threaded.reachable_ids_many(graph, sets) == [
            serial.reachable_ids(s, None) for s in sets
        ]

    def test_weighted_sums_bit_identical(self, threaded):
        graph = build_graph()
        serial = graph.csr()
        rng = random.Random(5)
        weights = np.asarray(
            [rng.random() for _ in range(graph.num_interned)], dtype=np.float64
        )
        sets = [[i] for i in range(graph.num_interned)]
        assert threaded.weighted_spread_sums(
            graph, sets, weights=weights, weights_key="w"
        ) == serial.weighted_spread_sums(sets, None, weights)

    @pytest.mark.parametrize("fold_name", ["count", "hop_discount", "time_decay"])
    def test_fold_sums_bit_identical(self, threaded, fold_name):
        graph = build_graph()
        serial = graph.csr()
        fold = resolve_fold(fold_name)
        sets = [[i] for i in range(graph.num_interned)]
        assert threaded.fold_spread_sums(
            graph, sets, fold=fold
        ) == serial.fold_spread_sums(sets, None, fold)

    def test_ancestors_match_serial(self, threaded):
        graph = build_graph()
        serial = graph.csr()
        targets = list(range(40))
        assert threaded.ancestor_ids(graph, targets) == serial.ancestor_ids(
            targets, None
        )
        assert threaded.touched_cone_ids(graph, targets) == serial.touched_cone_ids(
            targets
        )

    def test_mutation_invalidates_clone_cache(self, threaded):
        graph = build_graph()
        sets = [[i] for i in range(graph.num_interned)]
        threaded.spread_counts(graph, sets)  # clones cut at this version
        graph.add_interaction(Interaction("n0", "n59", graph.time, 50))
        serial = graph.csr()
        assert threaded.spread_counts(graph, sets) == serial.spread_counts(
            sets, None
        )
        assert threaded.ancestor_ids(graph, list(range(40))) == serial.ancestor_ids(
            list(range(40)), None
        )


class TestFaultFallback:
    def test_shard_exception_recomputed_serially(self, threaded):
        graph = build_graph()
        serial_counts = graph.csr().spread_counts(
            [[i] for i in range(graph.num_interned)], None
        )
        sets = [[i] for i in range(graph.num_interned)]

        class BrokenKernel:
            def spread_counts(self, *args, **kwargs):
                raise RuntimeError("injected shard failure")

        threaded._thread_kernels = lambda graph, reverse: [
            BrokenKernel() for _ in range(WORKERS)
        ]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert threaded.spread_counts(graph, sets) == serial_counts
        assert any("THREAD_ERROR" in str(w.message) for w in caught)
        report = threaded.health_report()
        assert report["incidents"][DegradationReason.THREAD_ERROR.name] >= 1
        # Incidents are absorbed: the executor never leaves sharded mode.
        assert report["state"] == "sharded"

    def test_closed_executor_serves_serially(self):
        executor = ShardedOracleExecutor(WORKERS, mode="threads")
        graph = build_graph()
        sets = [[i] for i in range(graph.num_interned)]
        expected = graph.csr().spread_counts(sets, None)
        assert executor.spread_counts(graph, sets) == expected
        executor.close()
        assert executor.health_report()["state"] == "halted"
        assert executor.spread_counts(graph, sets) == expected
        executor.close()  # idempotent
