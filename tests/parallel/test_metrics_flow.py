"""End-to-end metrics acceptance: a faulted sharded ingest run.

Drives a sharded :class:`IngestService` run with worker-kill faults
injected and then asserts the process-default registry's Prometheus
exposition carries non-zero series for every layer the PR instruments:
sampled kernel sweeps, oracle memo hits and misses, the executor's
shard-latency histogram, degradation transitions, worker restarts,
epoch lag, and batch-apply latency — with the worker-side counters
(``repro_worker_tasks_total`` only ever increments inside a worker
process) proving the owner-side delta merge actually ran.
"""

import asyncio
import os
import random
import warnings

import pytest

from repro.core.tracker import InfluenceTracker
from repro.influence.oracle import InfluenceOracle
from repro.kernels.instrument import disable_kernel_metrics, enable_kernel_metrics
from repro.obs import names as metric_names
from repro.obs.export import parse_prometheus_text
from repro.obs.registry import metrics_registry
from repro.parallel.executor import ShardedOracleExecutor
from repro.parallel.faults import FaultPlan
from repro.parallel.plane import shared_memory_available
from repro.parallel.service import IngestService
from repro.tdn.graph import TDNGraph
from repro.tdn.lifetimes import GeometricLifetime

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "3"))

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


@pytest.fixture(autouse=True)
def quiet_degradation_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


def batches(count=10, width=12):
    rng = random.Random(SEED + 21)
    out = []
    for t in range(count):
        out.append(
            (
                t,
                [
                    (f"u{rng.randrange(width)}", f"v{rng.randrange(width)}", None)
                    for _ in range(4)
                ],
            )
        )
    return out


def run_sharded_ingest(fault_spec=None, count=10):
    """One sharded ingest run; returns the drained TopKAnswer."""
    fault_plan = (
        FaultPlan.parse(f"{fault_spec};seed={SEED}") if fault_spec else None
    )

    async def run():
        graph = TDNGraph()
        executor = ShardedOracleExecutor(2, min_batch=1, fault_plan=fault_plan)
        try:
            oracle = InfluenceOracle(graph, parallel=executor)
            tracker = InfluenceTracker(
                "hist-approx",
                k=3,
                epsilon=0.3,
                lifetime_policy=GeometricLifetime(0.05, 60, seed=SEED),
                graph=graph,
                oracle=oracle,
            )
            service = IngestService(tracker)
            await service.start()
            try:
                for t, batch in batches(count=count):
                    await service.submit(t, batch)
                answer = await service.drain()
            finally:
                await service.close()
        finally:
            executor.close()
        return answer

    return asyncio.run(run())


def test_faulted_sharded_ingest_populates_every_instrumented_layer():
    registry = metrics_registry()
    registry.reset()
    enable_kernel_metrics(every=2)
    try:
        answer = run_sharded_ingest(fault_spec="kill=w0:2")
    finally:
        disable_kernel_metrics()
    assert answer.epoch > 0 and not answer.stale

    families = parse_prometheus_text(registry.render_prometheus())

    def sample(family: str, series: str = "") -> float:
        value = families[family]["samples"][series or family]
        assert isinstance(value, float)
        return value

    # Kernel sweeps, recorded through the sampled hook (owner and
    # workers; worker deltas arrive through the merge protocol).
    assert sample(metric_names.KERNEL_SWEEPS_TOTAL) > 0
    assert sample(metric_names.KERNEL_REACHED_NODES_TOTAL) > 0
    # Oracle memo traffic.
    assert sample(metric_names.ORACLE_MEMO_HITS_TOTAL) > 0
    assert sample(metric_names.ORACLE_MEMO_MISSES_TOTAL) > 0
    # Executor dispatches and the per-shard latency histogram.
    assert sample(metric_names.EXECUTOR_DISPATCHES_TOTAL) > 0
    latency = metric_names.EXECUTOR_SHARD_LATENCY_SECONDS
    assert sample(latency, f"{latency}_count") > 0
    # The injected worker kills: degradation records and pool restarts.
    assert sample(metric_names.DEGRADATION_TRANSITIONS_TOTAL) > 0
    assert sample(metric_names.DEGRADATION_INCIDENTS_TOTAL) > 0
    assert sample(metric_names.WORKER_RESTARTS_TOTAL) > 0
    # Ingest service: epoch lag and batch-apply latency histograms.
    lag = metric_names.INGEST_EPOCH_LAG_BATCHES
    assert sample(lag, f"{lag}_count") >= len(batches())
    apply_latency = metric_names.INGEST_BATCH_APPLY_SECONDS
    assert sample(apply_latency, f"{apply_latency}_count") >= len(batches())
    assert sample(metric_names.INGEST_BATCHES_APPLIED_TOTAL) >= len(batches())
    assert sample(metric_names.INGEST_EPOCH) == float(answer.epoch)
    assert sample(metric_names.INGEST_EPOCH_LAG) == 0.0  # fully drained
    # Worker-side counters only ever increment inside worker processes;
    # a non-zero owner-side value proves the delta merge ran.
    assert sample(metric_names.WORKER_TASKS_TOTAL) > 0


def test_worker_deltas_merge_without_faults():
    registry = metrics_registry()
    registry.reset()
    answer = run_sharded_ingest(count=6)
    assert not answer.stale
    values = registry.counter_values()
    assert values[metric_names.WORKER_TASKS_TOTAL] > 0
    assert values[metric_names.KERNEL_SWEEPS_TOTAL] > 0
    assert values[metric_names.WORKER_RESTARTS_TOTAL] == 0
