"""The worker loop, driven in-process (queues + thread, real plane).

The pool tests exercise ``worker_main`` for real, but in child processes
where coverage cannot see it; this module drives the exact same loop in a
thread against plain queues, pinning the protocol — result tagging, error
reporting instead of crashing, generation re-attachment, stop handling.
"""

import queue
import random
import threading

import pytest

from repro.parallel import worker
from repro.parallel.plane import SharedCSRPlane, shared_memory_available
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


@pytest.fixture
def loop_harness():
    """A worker_main loop running in a thread over in-process queues."""
    tasks: queue.Queue = queue.Queue()
    results: queue.Queue = queue.Queue()
    plane = SharedCSRPlane()
    thread = threading.Thread(
        target=worker.worker_main, args=(tasks, results, plane.prefix), daemon=True
    )
    thread.start()
    yield tasks, results, plane
    tasks.put((worker.OP_STOP,))
    thread.join(timeout=10)
    plane.close()


def get_reply(results, timeout=10):
    """Next substantive result, skipping started-acks and metrics.

    Every sweep op first acknowledges the claim with
    ``(request, shard, ("started", worker_index))`` so the supervisor can
    attribute in-flight shards to workers, and flushes its drained
    counter deltas as a ``("metrics", {name: delta})`` message before the
    ok/error reply; the tests here mostly care about the reply itself.
    """
    while True:
        item = results.get(timeout=timeout)
        if item[2][0] not in ("started", "metrics"):
            return item


def build_graph(seed=3):
    rng = random.Random(seed)
    graph = TDNGraph()
    for t in range(40):
        graph.advance_to(t)
        u, v = rng.sample(range(20), 2)
        graph.add_interaction(Interaction(f"n{u}", f"n{v}", t, rng.randint(2, 30)))
    return graph


class TestWorkerLoop:
    def test_ping_and_all_ops(self, loop_harness):
        tasks, results, plane = loop_harness
        graph = build_graph()
        generation = plane.publish(graph)
        serial = graph.csr()
        eff = float(graph.time + 1)
        ids = list(range(graph.num_interned))

        tasks.put((worker.OP_PING, 1))
        assert results.get(timeout=10) == (1, 0, ("ok", "pong"))

        # Sweep ops first acknowledge the claim, tagged with the worker
        # index, so the supervisor can strike in-flight tasks on death.
        sets = [[i] for i in ids[:10]]
        tasks.put((worker.OP_SPREAD, 2, 4, generation, sets, eff))
        assert results.get(timeout=10) == (2, 4, ("started", 0))
        # The worker-local metrics drain rides the result queue between
        # the claim ack and the reply, tagged with the same request.
        request, shard, (status, deltas) = results.get(timeout=10)
        assert (request, shard, status) == (2, 4, "metrics")
        assert deltas.get("repro_worker_tasks_total") == 1.0
        request, shard, (status, counts) = results.get(timeout=10)
        assert (request, shard, status) == (2, 4, "ok")
        assert counts == serial.spread_counts(sets, None)

        tasks.put((worker.OP_REACH, 3, 0, generation, sets, eff))
        _, _, (status, reach) = get_reply(results)
        assert status == "ok"
        assert [set(r) for r in reach] == [serial.reachable_ids(s, None) for s in sets]

        tasks.put((worker.OP_ANCESTORS, 4, 0, generation, ids[:5], eff))
        _, _, (status, ancestors) = get_reply(results)
        assert status == "ok"
        assert set(ancestors) == serial.ancestor_ids(ids[:5], None)

    def test_weighted_op_folds_published_weights(self, loop_harness):
        """OP_WSPREAD maps the published weight segment and returns the
        serial engine's exact 64-wide weight sums, re-attaching when the
        owner republishes a longer array under the same key."""
        import numpy as np

        from repro.parallel.plane import SharedWeights

        tasks, results, plane = loop_harness
        graph = build_graph(seed=21)
        generation = plane.publish(graph)
        serial = graph.csr()
        eff = float(graph.time + 1)
        ids = list(range(graph.num_interned))
        sets = [[i] for i in ids] + [ids[:3]]

        weights = np.asarray([1.0 + (i % 5) for i in ids], dtype=np.float64)
        published = SharedWeights(f"{plane.prefix}-wk-{len(ids)}", weights)
        try:
            payload = (sets, "wk", published.name, published.length)
            tasks.put((worker.OP_WSPREAD, 5, 2, generation, payload, eff))
            request, shard, (status, sums) = get_reply(results)
            assert (request, shard, status) == (5, 2, "ok")
            assert sums == serial.weighted_spread_sums(sets, None, weights)

            # Republish under the same key with a different epoch (name):
            # the worker must detach the stale mapping and re-attach.
            rescaled = weights * 2.0
            longer = SharedWeights(f"{plane.prefix}-wk-{len(ids)}b", rescaled)
            try:
                payload = (sets, "wk", longer.name, longer.length)
                tasks.put((worker.OP_WSPREAD, 6, 0, generation, payload, eff))
                _, _, (status, sums) = get_reply(results)
                assert status == "ok"
                assert sums == serial.weighted_spread_sums(sets, None, rescaled)
            finally:
                longer.close()
        finally:
            published.close()

    def test_reattaches_on_new_generation(self, loop_harness):
        tasks, results, plane = loop_harness
        graph = build_graph(seed=9)
        first = plane.publish(graph)
        sets = [[0], [1]]
        eff = float(graph.time + 1)
        tasks.put((worker.OP_SPREAD, 1, 0, first, sets, eff))
        assert get_reply(results)[2][0] == "ok"
        graph.advance_to(graph.time + 1)
        graph.add_interaction(Interaction("n0", "n1", graph.time, 9))
        second = plane.publish(graph)
        tasks.put((worker.OP_SPREAD, 2, 0, second, sets, float(graph.time + 1)))
        _, _, (status, counts) = get_reply(results)
        assert status == "ok"
        assert counts == graph.csr().spread_counts(sets, None)

    def test_errors_are_reported_not_fatal(self, loop_harness):
        tasks, results, plane = loop_harness
        graph = build_graph(seed=13)
        generation = plane.publish(graph)
        eff = float(graph.time + 1)
        # Generation skew: the header does not match what the task expects.
        tasks.put((worker.OP_SPREAD, 1, 0, generation + 5, [[0]], eff))
        _, _, (status, message) = get_reply(results)
        assert status == "error"
        # Unknown opcode travels the same error path...
        tasks.put(("no-such-op", 2, 0, generation, [[0]], eff))
        assert get_reply(results)[2][0] == "error"
        # ...and the loop is still alive afterwards.
        tasks.put((worker.OP_SPREAD, 3, 0, generation, [[0]], eff))
        _, _, (status, counts) = get_reply(results)
        assert status == "ok"
        assert counts == graph.csr().spread_counts([[0]], None)


class TestWorkerFaultHooks:
    """The in-loop fault hooks, driven in-thread.

    ``kill`` is deliberately excluded — its ``os._exit`` would take the
    test process down with it; the chaos suite exercises it against real
    child processes.
    """

    def _start(self, faults):
        from repro.parallel.faults import WorkerFaults

        tasks: queue.Queue = queue.Queue()
        results: queue.Queue = queue.Queue()
        plane = SharedCSRPlane()
        thread = threading.Thread(
            target=worker.worker_main,
            args=(tasks, results, plane.prefix, 3, WorkerFaults(**faults)),
            daemon=True,
        )
        thread.start()
        return tasks, results, plane, thread

    def test_drop_delay_and_attach_fault_sites(self):
        tasks, results, plane, thread = self._start(
            {
                "drop_at": frozenset({1}),
                "attach_fail_at": frozenset({1}),
                "delay_at": {3: 0.01},
            }
        )
        try:
            graph = build_graph(seed=5)
            generation = plane.publish(graph)
            eff = float(graph.time + 1)
            # Task 1 is dropped: no ack, no reply — the next reply on the
            # queue belongs to task 2.
            tasks.put((worker.OP_SPREAD, 1, 0, generation, [[0]], eff))
            # Task 2 is acked (claimed, tagged with the worker index) but
            # its first plane attach raises — reported as an error reply,
            # loop alive.
            tasks.put((worker.OP_SPREAD, 2, 1, generation, [[0]], eff))
            assert results.get(timeout=10) == (2, 1, ("started", 3))
            request, shard, (status, message) = get_reply(results)
            assert (request, shard, status) == (2, 1, "error")
            assert "attach" in message
            # Task 3 is delayed, then answers exactly (fresh attach works).
            tasks.put((worker.OP_SPREAD, 3, 2, generation, [[0]], eff))
            request, shard, (status, counts) = get_reply(results)
            assert (request, shard, status) == (3, 2, "ok")
            assert counts == graph.csr().spread_counts([[0]], None)
        finally:
            tasks.put((worker.OP_STOP,))
            thread.join(timeout=10)
            plane.close()
