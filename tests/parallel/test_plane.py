"""Shared-memory CSR plane: publish/attach round trips and lifecycle."""

import random

import pytest

from repro.parallel.plane import (
    PlaneEngine,
    SharedCSRPlane,
    attach_plane_engine,
    shared_memory_available,
)
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)


def build_graph(seed=11, num_nodes=40, num_events=200):
    rng = random.Random(seed)
    graph = TDNGraph()
    t = 0
    for _ in range(num_events):
        if rng.random() < 0.2:
            t += 1
            graph.advance_to(t)
        u, v = rng.sample(range(num_nodes), 2)
        lifetime = None if rng.random() < 0.1 else rng.randint(1, 40)
        graph.add_interaction(Interaction(f"n{u}", f"n{v}", t, lifetime))
    return graph


def plane_segments(prefix):
    """Names of this plane's live segments, probed via attach."""
    from multiprocessing import shared_memory

    names = []
    for suffix in ("hdr",):
        try:
            segment = shared_memory.SharedMemory(name=f"{prefix}-{suffix}")
        except FileNotFoundError:
            continue
        segment.close()
        names.append(suffix)
    return names


class TestPublishAttach:
    def test_round_trip_matches_serial_engine(self):
        graph = build_graph()
        plane = SharedCSRPlane()
        try:
            generation = plane.publish(graph)
            attachment = attach_plane_engine(plane.prefix, generation)
            try:
                engine = attachment.engine
                serial = graph.csr()
                eff = float(graph.time + 1)
                ids = list(range(graph.num_interned))
                for seeds in ([ids[0]], ids[:5], ids[3:9]):
                    assert engine.reachable_ids(seeds, eff) == serial.reachable_ids(
                        seeds, None
                    )
                    assert engine.ancestor_ids(seeds, eff) == serial.ancestor_ids(
                        seeds, None
                    )
                sets = [(i,) for i in ids[:30]]
                assert engine.spread_counts(sets, eff) == serial.spread_counts(
                    sets, None
                )
            finally:
                attachment.detach()
        finally:
            plane.close()

    def test_generation_bumps_and_supersedes(self):
        graph = build_graph()
        plane = SharedCSRPlane()
        try:
            first = plane.publish(graph)
            graph.advance_to(graph.time + 1)
            graph.add_interaction(Interaction("n0", "n1", graph.time, 10))
            second = plane.publish(graph)
            assert second == first + 1
            # The superseded generation is unlinked; attaching it fails.
            with pytest.raises((RuntimeError, FileNotFoundError)):
                attach_plane_engine(plane.prefix, first)
            attachment = attach_plane_engine(plane.prefix, second)
            attachment.detach()
        finally:
            plane.close()

    def test_generation_skew_is_detected(self):
        graph = build_graph()
        plane = SharedCSRPlane()
        try:
            generation = plane.publish(graph)
            with pytest.raises((RuntimeError, FileNotFoundError)):
                attach_plane_engine(plane.prefix, generation + 7)
        finally:
            plane.close()

    def test_close_unlinks_everything(self):
        graph = build_graph()
        plane = SharedCSRPlane()
        prefix = plane.prefix
        plane.publish(graph)
        plane.close()
        plane.close()  # idempotent
        assert plane_segments(prefix) == []
        with pytest.raises(FileNotFoundError):
            attach_plane_engine(prefix, 1)

    def test_empty_graph_publishes(self):
        plane = SharedCSRPlane()
        try:
            generation = plane.publish(TDNGraph())
            attachment = attach_plane_engine(plane.prefix, generation)
            try:
                assert attachment.engine.num_nodes == 0
                assert attachment.engine.spread_counts([], 1.0) == []
            finally:
                attachment.detach()
        finally:
            plane.close()


class TestPlaneEngine:
    def test_in_process_engine_matches_delta_csr(self):
        """PlaneEngine is pure over its arrays — no shm required."""
        graph = build_graph(seed=23)
        serial = graph.csr()
        from repro.tdn.csr import CSRSnapshot

        snapshot = CSRSnapshot.build(graph)
        engine = PlaneEngine(snapshot.indptr, snapshot.indices, snapshot.expiries)
        eff = float(graph.time + 1)
        ids = list(range(graph.num_interned))
        horizon = graph.time + 12
        assert engine.spread_counts(
            [(i,) for i in ids], max(float(horizon), eff)
        ) == serial.spread_counts([(i,) for i in ids], horizon)
        assert engine.reachable_ids(ids[:4], eff) == serial.reachable_ids(
            ids[:4], None
        )

    def test_out_of_range_ids_rejected(self):
        graph = build_graph(seed=5)
        from repro.tdn.csr import CSRSnapshot

        snapshot = CSRSnapshot.build(graph)
        engine = PlaneEngine(snapshot.indptr, snapshot.indices, snapshot.expiries)
        with pytest.raises(IndexError):
            engine.reachable_ids([graph.num_interned + 3], None)
        with pytest.raises(IndexError):
            engine.spread_counts([(-1,)], None)
