"""Async ingest service: ordering, backpressure, consistency, failure."""

import asyncio

import pytest

from repro.core.tracker import InfluenceTracker
from repro.parallel.service import IngestService, TopKAnswer
from repro.tdn.lifetimes import GeometricLifetime


def make_tracker(**kwargs):
    return InfluenceTracker(
        "sieve-adn",
        k=3,
        epsilon=0.3,
        lifetime_policy=GeometricLifetime(0.05, 60, seed=3),
        **kwargs,
    )


def batches(count=24):
    return [
        (t, [(f"u{t % 6}", f"v{(t * 3) % 9}", None), (f"v{t % 9}", f"w{t % 4}", None)])
        for t in range(count)
    ]


class TestIngestService:
    def test_matches_direct_stepping(self):
        async def run():
            tracker = make_tracker()
            service = IngestService(tracker)
            await service.start()
            for t, batch in batches():
                await service.submit(t, batch)
            answer = await service.drain()
            await service.close()
            return answer

        answer = asyncio.run(run())
        reference = make_tracker()
        solution = None
        for t, batch in batches():
            solution = reference.step(t, batch)
        assert answer == TopKAnswer(
            epoch=len(batches()),
            time=solution.time,
            nodes=tuple(solution.nodes),
            value=float(solution.value),
        )

    def test_queries_serve_last_consistent_epoch(self):
        async def run():
            tracker = make_tracker()
            service = IngestService(tracker, max_pending=4)
            await service.start()
            seen = []

            async def producer():
                for t, batch in batches():
                    await service.submit(t, batch)

            async def querier():
                for _ in range(40):
                    answer = await service.top_k()
                    seen.append(answer.epoch)
                    await asyncio.sleep(0)

            await asyncio.gather(producer(), querier())
            final = await service.drain()
            await service.close()
            return seen, final

        seen, final = asyncio.run(run())
        assert seen == sorted(seen)  # epochs only ever advance
        assert final.epoch == len(batches())

    def test_backpressure_bounds_the_queue(self):
        async def run():
            tracker = make_tracker()
            service = IngestService(tracker, max_pending=2)
            await service.start()
            for t, batch in batches(10):
                await service.submit(t, batch)
                assert service.pending <= 2
            await service.drain()
            await service.close()
            return service.batches_applied

        assert asyncio.run(run()) == 10

    def test_consumer_failure_surfaces_to_callers(self):
        async def run():
            tracker = make_tracker()
            service = IngestService(tracker)
            await service.start()
            await service.submit(5, [("a", "b", None)])
            await service.drain()
            # Rewinding time makes tracker.step raise inside the consumer.
            await service.submit(1, [("c", "d", None)])
            # A backlog *behind* the poison batch must not deadlock
            # drain(): the consumer discards (and acknowledges) it.
            for t in (6, 7, 8):
                await service.submit(t, [("x", f"y{t}", None)])
            with pytest.raises(RuntimeError, match="ingest consumer failed"):
                await service.drain()
            with pytest.raises(RuntimeError):
                await service.submit(9, [("e", "f", None)])
            assert service.batches_applied == 1  # nothing after the poison
            # close() re-raises the failure (after releasing resources),
            # so a submit-then-close caller can never miss dropped data.
            with pytest.raises(RuntimeError, match="ingest consumer failed"):
                await service.close()

        asyncio.run(run())

    def test_start_after_close_is_refused(self):
        async def run():
            service = IngestService(make_tracker())
            await service.start()
            await service.close()
            with pytest.raises(RuntimeError, match="closed"):
                await service.start()

        asyncio.run(run())

    def test_submit_requires_start(self):
        async def run():
            service = IngestService(make_tracker())
            with pytest.raises(RuntimeError, match="not running"):
                await service.submit(0, [])

        asyncio.run(run())

    def test_rejects_nonpositive_queue_bound(self):
        with pytest.raises(ValueError):
            IngestService(make_tracker(), max_pending=0)
