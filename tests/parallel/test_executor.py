"""Sharded executor: sharding math, pool lifecycle, fallback ladder."""

import os
import random
import warnings

import pytest

from repro.influence.oracle import InfluenceOracle
from repro.parallel.executor import (
    ShardedOracleExecutor,
    merge_shard_counts,
    shard_slices,
)
from repro.parallel.plane import shared_memory_available
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))


def build_graph(seed=17, num_nodes=50, num_events=260):
    rng = random.Random(seed)
    graph = TDNGraph()
    t = 0
    for _ in range(num_events):
        if rng.random() < 0.25:
            t += 1
            graph.advance_to(t)
        u, v = rng.sample(range(num_nodes), 2)
        graph.add_interaction(Interaction(f"n{u}", f"n{v}", t, rng.randint(3, 60)))
    return graph


class TestShardingMath:
    def test_slices_partition_exactly(self):
        for n in (0, 1, 2, 7, 64, 100):
            for shards in (1, 2, 3, 5, 16):
                slices = shard_slices(n, shards)
                covered = [i for start, stop in slices for i in range(start, stop)]
                assert covered == list(range(n))
                assert all(stop > start for start, stop in slices)
                if slices:
                    sizes = [stop - start for start, stop in slices]
                    assert max(sizes) - min(sizes) <= 1

    def test_merge_restores_submission_order(self):
        slices = shard_slices(7, 3)
        shard_results = [list(range(start, stop)) for start, stop in slices]
        assert merge_shard_counts(slices, shard_results, 7) == list(range(7))

    def test_merge_rejects_short_shard(self):
        with pytest.raises(ValueError):
            merge_shard_counts([(0, 2)], [[1]], 2)


class TestSerialFallback:
    def test_workers_one_never_starts_a_pool(self):
        graph = build_graph()
        executor = ShardedOracleExecutor(1)
        sets = [[i] for i in range(graph.num_interned)]
        assert executor.spread_counts(graph, sets) == graph.csr().spread_counts(
            sets, None
        )
        assert executor._procs == []
        assert not executor.parallel_available
        executor.close()

    def test_small_batches_stay_serial(self):
        graph = build_graph()
        executor = ShardedOracleExecutor(WORKERS, min_batch=10_000)
        sets = [[i] for i in range(graph.num_interned)]
        counts = executor.spread_counts(graph, sets)
        assert counts == graph.csr().spread_counts(sets, None)
        assert executor._procs == []  # pool never started: batch below floor
        executor.close()

    def test_narrow_ancestor_sweeps_stay_serial(self):
        """Reverse sweeps below the ancestor floor never start the pool."""
        graph = build_graph()
        executor = ShardedOracleExecutor(WORKERS, min_batch=1)
        ids = list(range(min(graph.num_interned, executor.ancestor_min_batch - 1)))
        assert executor.ancestor_ids(graph, ids) == graph.csr().ancestor_ids(
            ids, None
        )
        assert executor._procs == []
        executor.close()

    def test_closed_executor_serves_serially(self):
        graph = build_graph()
        executor = ShardedOracleExecutor(WORKERS)
        executor.close()
        sets = [[i] for i in range(graph.num_interned)]
        assert executor.spread_counts(graph, sets) == graph.csr().spread_counts(
            sets, None
        )


@pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)
class TestPoolQueries:
    def test_spread_reach_and_ancestors_match_serial(self):
        graph = build_graph()
        serial = graph.csr()
        executor = ShardedOracleExecutor(WORKERS, min_batch=1, ancestor_min_batch=1)
        try:
            ids = list(range(graph.num_interned))
            sets = [[i] for i in ids] + [ids[:3], ids[5:11]]
            horizon = graph.time + 8
            assert executor.spread_counts(graph, sets, horizon) == (
                serial.spread_counts(sets, horizon)
            )
            assert executor.spread_counts(graph, sets) == serial.spread_counts(
                sets, None
            )
            reached = executor.reachable_ids_many(graph, sets, horizon)
            assert reached == [serial.reachable_ids(s, horizon) for s in sets]
            assert executor.ancestor_ids(graph, ids[:9]) == serial.ancestor_ids(
                ids[:9], None
            )
            assert executor.touched_cone_ids(graph, ids[:9]) == (
                serial.touched_cone_ids(ids[:9])
            )
        finally:
            executor.close()

    def test_republish_tracks_graph_version(self):
        graph = build_graph()
        executor = ShardedOracleExecutor(WORKERS, min_batch=1)
        try:
            sets = [[i] for i in range(graph.num_interned)]
            first = executor.spread_counts(graph, sets)
            assert first == graph.csr().spread_counts(sets, None)
            generation = executor._plane.generation
            # Same version: no republish.
            executor.spread_counts(graph, sets)
            assert executor._plane.generation == generation
            graph.advance_to(graph.time + 1)
            graph.add_interaction(Interaction("n0", "n1", graph.time, 30))
            second = executor.spread_counts(graph, sets)
            assert executor._plane.generation == generation + 1
            assert second == graph.csr().spread_counts(sets, None)
        finally:
            executor.close()

    def test_worker_death_is_supervised_and_recovers(self):
        """Killing the whole pool no longer forfeits sharding forever:
        the supervisor recycles the pool (fresh queues — a worker killed
        inside Queue.get holds the reader lock), the interrupted request
        still gets exact results, and later requests run sharded again.
        Teardown afterwards must leak nothing."""
        graph = build_graph()
        executor = ShardedOracleExecutor(WORKERS, min_batch=1)
        prefix = None
        try:
            sets = [[i] for i in range(graph.num_interned)]
            expected = graph.csr().spread_counts(sets, None)
            assert executor.spread_counts(graph, sets) == expected
            prefix = executor._plane.prefix
            first_procs = list(executor._procs)
            for proc in first_procs:
                proc.terminate()
            for proc in first_procs:
                proc.join(timeout=10)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                after = executor.spread_counts(graph, sets)
            assert after == expected  # exact despite the mid-flight deaths
            report = executor.health_report()
            assert report["incidents"].get("WORKER_DEATH", 0) >= 1
            assert report["pool"]["restarts_used"] >= 1
            # The pool came back: sharded serving resumes (possibly after
            # one recovery step) and the respawned workers answer.
            assert executor.spread_counts(graph, sets) == expected
            assert executor.parallel_available
            assert executor.pool_running
            assert all(proc.is_alive() for proc in executor._procs)
        finally:
            executor.close()
        assert executor.degraded is not None  # closed is terminal
        if prefix is not None:
            from multiprocessing import shared_memory

            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=f"{prefix}-hdr")


@pytest.mark.skipif(
    not shared_memory_available(), reason="POSIX shared memory unavailable"
)
class TestOracleIntegration:
    def test_shared_executor_across_oracles(self):
        graph = build_graph(seed=29)
        executor = ShardedOracleExecutor(WORKERS, min_batch=1)
        try:
            first = InfluenceOracle(graph, parallel=executor, max_cache_entries=0)
            second = InfluenceOracle(graph, parallel=executor, max_cache_entries=0)
            serial = InfluenceOracle(graph, max_cache_entries=0)
            nodes = sorted(graph.node_set(), key=repr)
            sets = [(n,) for n in nodes]
            assert first.spread_many(sets) == serial.spread_many(sets)
            assert second.spread_many(sets) == serial.spread_many(sets)
            # Shared executors are not closed by their oracles.
            first.close()
            assert executor.degraded is None
        finally:
            executor.close()

    def test_parallel_rejects_dict_backend(self):
        graph = build_graph(seed=31)
        with pytest.raises(ValueError):
            InfluenceOracle(graph, backend="dict", parallel=2)

    def test_parallel_one_is_serial(self):
        graph = build_graph(seed=31)
        oracle = InfluenceOracle(graph, parallel=1)
        assert oracle.executor is None
        assert oracle.workers == 1
        oracle.close()
