"""Round-trip tests for checkpoint/restore.

The gold standard: a run that checkpoints halfway and resumes must produce
exactly the same solutions and values as an uninterrupted run.
"""

import math
import random

import pytest

from repro.core.basic_reduction import BasicReduction
from repro.core.hist_approx import HistApprox
from repro.core.sieve_adn import SieveADN
from repro.influence.oracle import InfluenceOracle
from repro.persistence import (
    algorithm_from_dict,
    algorithm_to_dict,
    graph_from_dict,
    graph_to_dict,
    load_checkpoint,
    save_checkpoint,
)
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.tdn.stream import MemoryStream


def random_events(seed, steps=12, num_nodes=8, max_lifetime=6, infinite_fraction=0.1):
    rng = random.Random(seed)
    events = []
    for t in range(steps):
        for _ in range(rng.randint(1, 3)):
            u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
            if u == v:
                continue
            if rng.random() < infinite_fraction:
                lifetime = None
            else:
                lifetime = rng.randint(1, max_lifetime)
            events.append(Interaction(f"n{u}", f"n{v}", t, lifetime))
    return events


class TestGraphRoundTrip:
    def test_alive_state_preserved(self):
        events = random_events(1)
        graph = TDNGraph()
        for t, batch in MemoryStream(events, fill_gaps=True):
            graph.advance_to(t)
            graph.add_batch(batch)
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored.time == graph.time
        assert restored.num_edges == graph.num_edges
        assert restored.node_set() == graph.node_set()
        assert sorted(restored.alive_pairs()) == sorted(graph.alive_pairs())

    def test_expiries_preserved(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 3))
        graph.add_interaction(Interaction("a", "b", 0, 7))
        graph.add_interaction(Interaction("c", "d", 0))  # infinite
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored.max_expiry("a", "b") == 7
        assert restored.max_expiry("c", "d") == math.inf
        assert restored.interaction_count("a", "b") == 2
        # Future expiries behave identically.
        graph.advance_to(3)
        restored.advance_to(3)
        assert restored.interaction_count("a", "b") == graph.interaction_count("a", "b")

    def test_unserializable_label_rejected(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction(("tuple", "label"), "b", 0, 3))
        with pytest.raises(TypeError, match="not JSON-serializable"):
            graph_to_dict(graph)


@pytest.mark.parametrize(
    "factory",
    [
        lambda graph: SieveADN(2, 0.1, graph),
        lambda graph: BasicReduction(2, 0.1, 6, graph),
        lambda graph: HistApprox(2, 0.1, graph),
        lambda graph: HistApprox(2, 0.1, graph, refine_head=True),
    ],
    ids=["sieve-adn", "basic-reduction", "hist-approx", "hist-refined"],
)
class TestResumeEquivalence:
    def test_resumed_run_matches_uninterrupted(self, factory, tmp_path):
        """Checkpoint halfway, restore, finish: identical query results."""
        probe = factory(TDNGraph())
        is_sieve = isinstance(probe, SieveADN)
        allows_infinite = isinstance(probe, (SieveADN, HistApprox))
        events = random_events(7, infinite_fraction=0.1 if allows_infinite else 0.0)
        if is_sieve:
            events = [e.with_lifetime(None) for e in events]
        batches = list(MemoryStream(events, fill_gaps=True))
        half = len(batches) // 2

        # Uninterrupted reference run.
        graph_ref = TDNGraph()
        algo_ref = factory(graph_ref)
        for t, batch in batches:
            graph_ref.advance_to(t)
            graph_ref.add_batch(batch)
            algo_ref.on_batch(t, batch)

        # Interrupted run: process half, checkpoint, restore, finish.
        graph_a = TDNGraph()
        algo_a = factory(graph_a)
        for t, batch in batches[:half]:
            graph_a.advance_to(t)
            graph_a.add_batch(batch)
            algo_a.on_batch(t, batch)
        path = tmp_path / "checkpoint.json"
        save_checkpoint(path, graph_a, algo_a)
        graph_b, algo_b = load_checkpoint(path)
        for t, batch in batches[half:]:
            graph_b.advance_to(t)
            graph_b.add_batch(batch)
            algo_b.on_batch(t, batch)

        assert algo_b.query().value == algo_ref.query().value
        assert algo_b.query().nodes == algo_ref.query().nodes

    def test_dict_round_trip_preserves_query(self, factory, tmp_path):
        is_sieve = isinstance(factory(TDNGraph()), SieveADN)
        events = random_events(9, infinite_fraction=0.0)
        if is_sieve:
            events = [e.with_lifetime(None) for e in events]
        graph = TDNGraph()
        algorithm = factory(graph)
        for t, batch in MemoryStream(events, fill_gaps=True):
            graph.advance_to(t)
            graph.add_batch(batch)
            algorithm.on_batch(t, batch)
        restored_graph = graph_from_dict(graph_to_dict(graph))
        restored = algorithm_from_dict(algorithm_to_dict(algorithm), restored_graph)
        assert restored.query().value == algorithm.query().value
        assert restored.query().nodes == algorithm.query().nodes


class TestOracleConfigRoundTrip:
    def test_memo_mode_and_backend_survive_restore(self):
        graph = TDNGraph()
        batch = [Interaction("a", "b", 0, 9)]
        graph.add_batch(batch)
        oracle = InfluenceOracle(
            graph, backend="dict", memo_mode="version", max_cache_entries=17
        )
        sieve = SieveADN(2, 0.2, graph, oracle)
        sieve.on_batch(0, batch)
        payload = algorithm_to_dict(sieve)
        assert payload["oracle"] == {
            "backend": "dict",
            "memo_mode": "version",
            "max_cache_entries": 17,
            "workers": 1,
        }
        restored_graph = graph_from_dict(graph_to_dict(graph))
        restored = algorithm_from_dict(payload, restored_graph)
        assert restored.oracle.backend == "dict"
        assert restored.oracle.memo_mode == "version"
        assert restored.oracle.max_cache_entries == 17
        assert restored.query() == sieve.query()

    def test_missing_oracle_config_defaults(self):
        """Checkpoints predating oracle serialization restore with defaults."""
        graph = TDNGraph()
        batch = [Interaction("a", "b", 0, 9)]
        graph.add_batch(batch)
        sieve = SieveADN(2, 0.2, graph)
        sieve.on_batch(0, batch)
        payload = algorithm_to_dict(sieve)
        del payload["oracle"]
        restored = algorithm_from_dict(payload, graph_from_dict(graph_to_dict(graph)))
        assert restored.oracle.backend == "csr"
        assert restored.oracle.memo_mode == "delta"

    def test_shared_oracle_config_on_composite_algorithms(self):
        graph = TDNGraph()
        oracle = InfluenceOracle(graph, memo_mode="version")
        hist = HistApprox(2, 0.2, graph, oracle)
        batch = [Interaction("a", "b", 0, 3)]
        graph.add_batch(batch)
        hist.on_batch(0, batch)
        payload = algorithm_to_dict(hist)
        restored = algorithm_from_dict(payload, graph_from_dict(graph_to_dict(graph)))
        assert restored.oracle.memo_mode == "version"
        # Instances share the one restored oracle.
        assert all(
            inst.oracle is restored.oracle for inst in restored._instances.values()
        )


class TestErrorHandling:
    def test_unknown_algorithm_type(self):
        with pytest.raises(ValueError, match="unknown serialized algorithm"):
            algorithm_from_dict({"type": "Mystery", "format_version": 1}, TDNGraph())

    def test_wrong_format_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99}')
        with pytest.raises(ValueError, match="unsupported checkpoint format"):
            load_checkpoint(path)

    def test_unserializable_algorithm(self):
        from repro.baselines.random_baseline import RandomBaseline

        with pytest.raises(TypeError, match="cannot serialize"):
            algorithm_to_dict(RandomBaseline(2, TDNGraph()))
