"""Property-based tests for the lazy threshold grid and lifetime policies."""

import math

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.thresholds import ThresholdSet
from repro.tdn.interaction import Interaction
from repro.tdn.lifetimes import GeometricLifetime

EVENT = Interaction("a", "b", 0)


@given(
    k=st.integers(min_value=1, max_value=50),
    epsilon=st.floats(min_value=0.01, max_value=0.9),
    deltas=st.lists(st.floats(min_value=0.5, max_value=1e6), min_size=1, max_size=10),
)
@settings(max_examples=100, deadline=None)
def test_grid_window_invariant(k, epsilon, deltas):
    """After any delta sequence: thresholds exactly cover [D/2k, D] range.

    Every maintained threshold theta = (1+eps)^i / 2k must satisfy
    Delta/(2k) <= theta (up to one grid step) and theta <= Delta (same),
    and consecutive thresholds differ by the factor (1+eps).
    """
    grid = ThresholdSet(k, epsilon)
    for delta in deltas:
        grid.update_delta(delta)
    top = max(deltas)
    assert grid.delta == top
    thresholds = [t for t, _ in grid.items()]
    assert thresholds, "grid must be non-empty once delta > 0"
    lo_bound = top / (2 * k)
    hi_bound = top
    tolerance = 1 + epsilon + 1e-6
    assert thresholds[0] >= lo_bound / tolerance
    assert thresholds[-1] <= hi_bound * tolerance
    for a, b in zip(thresholds, thresholds[1:]):
        assert b / a == _approx(1 + epsilon)


def _approx(value):
    class _Cmp:
        def __eq__(self, other):
            return math.isclose(other, value, rel_tol=1e-9)

    return _Cmp()


@given(
    k=st.integers(min_value=1, max_value=30),
    epsilon=st.floats(min_value=0.05, max_value=0.5),
    delta=st.floats(min_value=1.0, max_value=1e5),
)
@settings(max_examples=100, deadline=None)
def test_grid_size_bound(k, epsilon, delta):
    """|Theta| = O(log(2k)/eps), the space bound of Theorem 3."""
    grid = ThresholdSet(k, epsilon)
    grid.update_delta(delta)
    bound = math.log(2 * k) / math.log1p(epsilon) + 2
    assert len(grid) <= bound


@given(
    p=st.floats(min_value=0.01, max_value=0.9),
    max_lifetime=st.integers(min_value=1, max_value=500),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=100, deadline=None)
def test_geometric_draws_always_valid(p, max_lifetime, seed):
    policy = GeometricLifetime(p, max_lifetime, seed=seed)
    for _ in range(50):
        draw = policy.draw(EVENT)
        assert 1 <= draw <= max_lifetime
