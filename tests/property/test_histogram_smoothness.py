"""Property tests for HISTAPPROX's redundancy removal (Alg. 3 lines 19-22).

On a non-increasing value profile (larger horizons see fewer edges, so
``g`` decreases in the index — the regime the paper's smooth-histogram
argument lives in), one forward pass must leave a histogram where:

* the head index is always kept (it is the solution the tracker reports);
* every deletion was justified: consecutive kept indices that skip over
  deleted ones are eps-close (``g(next) >= (1 - eps) * g(prev)``);
* no kept index is redundant: for any three consecutive kept indices the
  outer pair is *never* eps-close (otherwise the middle one should have
  been deleted) — the paper's smooth-histogram invariant;
* a second pass is a no-op (the reduction is a fixed point).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.hist_approx import HistApprox
from repro.tdn.graph import TDNGraph


class _FixedValueInstance:
    def __init__(self, value):
        self.value = value

    def query_value_cached(self):
        return self.value


def reduce_values(values, epsilon):
    """Run one redundancy pass over a synthetic value profile.

    Returns ``(kept_positions, kept_values)`` where positions index into
    the original profile.
    """
    hist = HistApprox(2, epsilon, TDNGraph())
    horizons = [float(i + 1) for i in range(len(values))]
    hist._horizons = list(horizons)
    hist._instances = {
        h: _FixedValueInstance(v) for h, v in zip(horizons, values)
    }
    hist._reduce_redundancy()
    kept_positions = [horizons.index(h) for h in hist._horizons]
    return kept_positions, [values[p] for p in kept_positions]


monotone_profiles = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=40,
).map(lambda xs: sorted(xs, reverse=True))

epsilons = st.floats(min_value=0.01, max_value=0.9)


@settings(max_examples=300, deadline=None)
@given(values=monotone_profiles, epsilon=epsilons)
def test_smooth_histogram_invariant(values, epsilon):
    kept_positions, kept_values = reduce_values(values, epsilon)

    # Head is never deleted.
    assert kept_positions[0] == 0
    # The tail index always survives too (nothing beyond it to justify
    # a deletion), so the histogram's support endpoints are intact.
    assert kept_positions[-1] == len(values) - 1

    shrink = 1.0 - epsilon
    for prev, nxt, prev_value, nxt_value in zip(
        kept_positions, kept_positions[1:], kept_values, kept_values[1:]
    ):
        if nxt > prev + 1:
            # Indices were skipped: the deletion must have been justified
            # by eps-closeness across the gap.
            assert nxt_value >= shrink * prev_value

    for first, third in zip(kept_values, kept_values[2:]):
        # No kept index is redundant: across any kept triple the outer
        # values are never eps-close (the middle would be deletable).
        assert third < shrink * first or (first == 0.0 and third == 0.0)


@settings(max_examples=150, deadline=None)
@given(values=monotone_profiles, epsilon=epsilons)
def test_reduction_is_a_fixed_point(values, epsilon):
    kept_positions, kept_values = reduce_values(values, epsilon)
    again_positions, again_values = reduce_values(kept_values, epsilon)
    assert again_positions == list(range(len(kept_values)))
    assert again_values == kept_values
