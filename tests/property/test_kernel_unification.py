"""Differential property suite for the unified traversal kernel.

Hypothesis drives random time-decayed streams through all three former
traversal call paths — the live :class:`~repro.tdn.csr.DeltaCSR` engine
(overlay + tombstones), a from-scratch :class:`~repro.tdn.csr.
CSRSnapshot`, and the worker-side :class:`~repro.parallel.plane.
PlaneEngine` over the same flat arrays — and asserts identical spreads,
reachable/ancestor sets and *bit-identical* weighted sums, against each
other and against the reference dict BFS.  Since PR 5 all three are thin
adapters over one :class:`repro.kernels.TraversalKernel`, so this suite
is the tripwire that the adapters (overlay injection, horizon clamping,
transpose wiring) stay faithful — the kernel physics itself can no
longer drift between engines.

Also pinned here: every engine rejects an out-of-range seed id with the
*identical* ``IndexError`` message on every path (the kernel's unified
validation), and the scalar/vector cutover is exercised on both sides by
drawing the per-engine override.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.influence.reachability import ancestors, reachable_set
from repro.kernels import (
    FOLD_NAMES,
    dense_weight_sum,
    native_available,
    resolve_fold,
    seed_range_error,
)
from repro.parallel.plane import PlaneEngine
from repro.tdn.csr import CSRSnapshot, DeltaCSR
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction

#: Both kernel backends; the native leg self-skips where numba is absent,
#: so this file passes identically with or without the [native] extra.
BACKENDS = [
    "python",
    pytest.param(
        "native",
        marks=pytest.mark.skipif(
            not native_available(), reason="numba unavailable"
        ),
    ),
]


def build_stream_graph(seed, num_nodes, num_events):
    """A random decayed stream with the delta engine live from step one."""
    rng = random.Random(seed)
    graph = TDNGraph()
    graph.csr()  # live engine: every mutation flows through the overlay
    t = 0
    for _ in range(num_events):
        if rng.random() < 0.25:
            t += rng.randint(1, 4)
            graph.advance_to(t)
        u, v = rng.sample(range(num_nodes), 2)
        lifetime = None if rng.random() < 0.1 else rng.randint(1, 25)
        graph.add_interaction(Interaction(f"n{u}", f"n{v}", t, lifetime))
    return graph


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=35, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_nodes=st.integers(4, 22),
    num_events=st.integers(5, 110),
    scalar_limit=st.sampled_from([0, 10**9, None]),
    horizon_offset=st.one_of(st.none(), st.integers(1, 30)),
    data=st.data(),
)
def test_all_engines_agree_on_every_sweep(
    backend, seed, num_nodes, num_events, scalar_limit, horizon_offset, data
):
    graph = build_stream_graph(seed, num_nodes, num_events)
    delta = graph.csr()
    if scalar_limit is not None or backend != "python":
        delta = DeltaCSR(
            graph, scalar_pair_limit=scalar_limit, backend=backend
        )
    snapshot = CSRSnapshot.build(
        graph, scalar_pair_limit=scalar_limit, backend=backend
    )
    plane = PlaneEngine(
        snapshot.indptr, snapshot.indices, snapshot.expiries, backend=backend
    )
    ids = list(range(graph.num_interned))
    if not ids:
        return

    t = graph.time
    horizon = None if horizon_offset is None else float(t + horizon_offset)
    # The delta engine clamps lazily-tombstoned entries away at t + 1; the
    # snapshot and plane see only alive pairs, so the same clamp resolved
    # caller-side makes all three answer the identical question.
    eff = max(float(t + 1), horizon) if horizon is not None else float(t + 1)

    seeds = data.draw(
        st.lists(st.sampled_from(ids), min_size=1, max_size=5, unique=True)
    )
    seed_nodes = [graph.node_of_id(i) for i in seeds]

    # Forward reachability: all three engines == the dict reference.
    expected = {graph.node_id(n) for n in reachable_set(graph, seed_nodes, horizon)}
    assert delta.reachable_ids(seeds, horizon) == expected
    assert snapshot.reachable_ids(seeds, eff) == expected
    assert plane.reachable_ids(seeds, eff) == expected
    assert delta.reachable_count(seeds, horizon) == len(expected)
    assert snapshot.reachable_count(seeds, eff) == len(expected)

    # Reverse (ancestor) sweeps: delta's overlay-aware transpose == the
    # plane's rebuilt transpose == the dict reference walk.
    expected_up = {graph.node_id(n) for n in ancestors(graph, seed_nodes, horizon)}
    assert delta.ancestor_ids(seeds, horizon) == expected_up
    assert plane.ancestor_ids(seeds, eff) == expected_up

    # Bit-plane spreads and weighted sums, batch shapes drawn freely.
    id_sets = data.draw(
        st.lists(
            st.lists(st.sampled_from(ids), min_size=0, max_size=4),
            min_size=1,
            max_size=10,
        )
    )
    per_set = [delta.reachable_count(s, horizon) if s else 0 for s in id_sets]
    assert delta.spread_counts(id_sets, horizon) == per_set
    assert plane.spread_counts(id_sets, eff) == per_set

    weights = np.asarray(
        [1.0 + (i % 7) * 0.5 for i in range(graph.num_interned)],
        dtype=np.float64,
    )
    expected_sums = [
        dense_weight_sum(weights, delta.reachable_ids(s, horizon)) if s else 0.0
        for s in id_sets
    ]
    assert delta.weighted_spread_sums(id_sets, horizon, weights) == expected_sums
    assert plane.weighted_spread_sums(id_sets, eff, weights) == expected_sums

    # All four fold semantics, bit-identical across engines: count and
    # weighted_sum route through the mask sweep, hop_discount through the
    # level histogram (the third jitted fixpoint), time_decay through
    # derived node values — every backend path is covered.
    for name in sorted(FOLD_NAMES):
        fold = resolve_fold(name)
        fold_weights = weights if fold.needs_weights else None
        expected_fold = delta.fold_spread_sums(id_sets, horizon, fold, fold_weights)
        assert (
            snapshot.fold_spread_sums(id_sets, eff, fold, fold_weights)
            == expected_fold
        )
        assert (
            plane.fold_spread_sums(id_sets, eff, fold, fold_weights)
            == expected_fold
        )


@pytest.mark.parametrize("bad_seed", [-3, 10_000])
@pytest.mark.parametrize("force_scalar", [False, True])
def test_every_engine_rejects_bad_seeds_identically(
    bad_seed, force_scalar, monkeypatch
):
    """Satellite pin: one IndexError message across all engines and paths."""
    if force_scalar:
        monkeypatch.setattr(CSRSnapshot, "SCALAR_PAIR_LIMIT", 10**9)
    else:
        monkeypatch.setattr(CSRSnapshot, "SCALAR_PAIR_LIMIT", 0)
    graph = build_stream_graph(7, 12, 60)
    delta = graph.csr()
    snapshot = CSRSnapshot.build(graph)
    plane = PlaneEngine(snapshot.indptr, snapshot.indices, snapshot.expiries)
    eff = float(graph.time + 1)
    weights = np.ones(graph.num_interned, dtype=np.float64)
    expected = str(seed_range_error(bad_seed, graph.num_interned))

    calls = [
        lambda: delta.reachable_ids([bad_seed]),
        lambda: delta.reachable_count([bad_seed]),
        lambda: delta.ancestor_ids([bad_seed]),
        lambda: delta.spread_counts([[0], [bad_seed]]),
        lambda: delta.weighted_spread_sums([[bad_seed]], None, weights),
        lambda: snapshot.reachable_ids([bad_seed]),
        lambda: snapshot.reachable_count([bad_seed]),
        lambda: plane.reachable_ids([bad_seed], eff),
        lambda: plane.ancestor_ids([bad_seed], eff),
        lambda: plane.spread_counts([[bad_seed]], eff),
        lambda: plane.weighted_spread_sums([[bad_seed]], eff, weights),
    ]
    for call in calls:
        with pytest.raises(IndexError) as excinfo:
            call()
        assert str(excinfo.value) == expected
