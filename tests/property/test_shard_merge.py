"""Property: shard-merged sweeps equal the single-sweep results.

The sharded executor's correctness rests on two algebraic facts — per-set
spread counts are independent of how a batch is partitioned, and
reachability distributes over seed union — plus the plane engine itself
agreeing with the serial delta engine.  Hypothesis drives all three on
random TDN streams, partition widths and horizons, using the in-process
:class:`~repro.parallel.plane.PlaneEngine` (the identical code workers
run) so the property fuzzes the physics without paying process spawns.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.executor import merge_shard_counts, shard_slices
from repro.parallel.plane import PlaneEngine
from repro.tdn.csr import CSRSnapshot
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


def build_stream_graph(seed, num_nodes, num_events):
    rng = random.Random(seed)
    graph = TDNGraph()
    t = 0
    for _ in range(num_events):
        if rng.random() < 0.3:
            t += rng.randint(1, 3)
            graph.advance_to(t)
        u, v = rng.sample(range(num_nodes), 2)
        lifetime = None if rng.random() < 0.1 else rng.randint(1, 30)
        graph.add_interaction(Interaction(f"n{u}", f"n{v}", t, lifetime))
    return graph


def plane_of(graph):
    snapshot = CSRSnapshot.build(graph)
    return PlaneEngine(snapshot.indptr, snapshot.indices, snapshot.expiries)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_nodes=st.integers(4, 24),
    num_events=st.integers(5, 120),
    num_shards=st.integers(1, 6),
    horizon_offset=st.one_of(st.none(), st.integers(1, 40)),
    data=st.data(),
)
def test_shard_merged_spread_counts_equal_single_sweep(
    seed, num_nodes, num_events, num_shards, horizon_offset, data
):
    graph = build_stream_graph(seed, num_nodes, num_events)
    engine = plane_of(graph)
    ids = list(range(graph.num_interned))
    if not ids:
        return
    id_sets = data.draw(
        st.lists(
            st.lists(st.sampled_from(ids), min_size=1, max_size=4),
            min_size=1,
            max_size=12,
        )
    )
    eff = float(graph.time + 1)
    if horizon_offset is not None:
        eff = max(eff, float(graph.time + horizon_offset))

    # The reference: one un-sharded sweep over the whole batch, which the
    # delta-CSR property suite already pins to the serial dict BFS.
    single = engine.spread_counts(id_sets, eff)
    serial = graph.csr().spread_counts(
        id_sets, None if horizon_offset is None else eff
    )
    assert single == serial

    slices = shard_slices(len(id_sets), num_shards)
    shard_results = [
        engine.spread_counts(id_sets[start:stop], eff) for start, stop in slices
    ]
    merged = merge_shard_counts(slices, shard_results, len(id_sets))
    assert merged == single


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_nodes=st.integers(4, 20),
    num_events=st.integers(5, 100),
    num_shards=st.integers(1, 5),
    data=st.data(),
)
def test_shard_merged_ancestors_equal_single_sweep(
    seed, num_nodes, num_events, num_shards, data
):
    graph = build_stream_graph(seed, num_nodes, num_events)
    engine = plane_of(graph)
    ids = list(range(graph.num_interned))
    if not ids:
        return
    targets = data.draw(
        st.lists(st.sampled_from(ids), min_size=1, max_size=8, unique=True)
    )
    eff = float(graph.time + 1)
    single = engine.ancestor_ids(targets, eff)
    assert single == graph.csr().ancestor_ids(targets, None)
    merged = set()
    for start, stop in shard_slices(len(targets), num_shards):
        merged |= engine.ancestor_ids(targets[start:stop], eff)
    assert merged == single
