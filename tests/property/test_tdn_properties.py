"""Property-based tests: TDNGraph agrees with a naive reference model.

The reference model keeps the full event list and answers every question by
linear scans using only ``Interaction.alive_at`` — the paper's membership
rule.  TDNGraph's incremental bookkeeping (expiry buckets, per-pair maxima,
node removal) must agree with it after arbitrary event sequences.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction

NODES = [f"n{i}" for i in range(5)]


@st.composite
def event_trace(draw):
    count = draw(st.integers(min_value=1, max_value=16))
    events = []
    for _ in range(count):
        u, v = draw(
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)).filter(
                lambda p: p[0] != p[1]
            )
        )
        t = draw(st.integers(min_value=0, max_value=8))
        lifetime = draw(st.one_of(st.integers(min_value=1, max_value=10), st.none()))
        events.append(Interaction(u, v, t, lifetime))
    events.sort(key=lambda e: e.time)
    return events


def build(events, upto):
    graph = TDNGraph()
    by_time = {}
    for e in events:
        by_time.setdefault(e.time, []).append(e)
    for t in range(upto + 1):
        graph.advance_to(t)
        for e in by_time.get(t, []):
            graph.add_interaction(e)
    return graph


@given(events=event_trace(), t=st.integers(min_value=0, max_value=8))
@settings(max_examples=80, deadline=None)
def test_edge_count_matches_reference(events, t):
    graph = build(events, t)
    alive = [e for e in events if e.alive_at(t)]
    assert graph.num_edges == len(alive)


@given(events=event_trace(), t=st.integers(min_value=0, max_value=8))
@settings(max_examples=80, deadline=None)
def test_node_set_matches_reference(events, t):
    graph = build(events, t)
    alive = [e for e in events if e.alive_at(t)]
    expected = {e.source for e in alive} | {e.target for e in alive}
    assert graph.node_set() == expected


@given(events=event_trace(), t=st.integers(min_value=0, max_value=8))
@settings(max_examples=80, deadline=None)
def test_pair_counts_match_reference(events, t):
    graph = build(events, t)
    alive = [e for e in events if e.alive_at(t)]
    for u in NODES:
        for v in NODES:
            if u == v:
                continue
            expected = sum(1 for e in alive if e.source == u and e.target == v)
            assert graph.interaction_count(u, v) == expected


@given(
    events=event_trace(),
    t=st.integers(min_value=0, max_value=8),
    horizon_offset=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=80, deadline=None)
def test_horizon_adjacency_matches_reference(events, t, horizon_offset):
    """out_neighbors(min_expiry=h) == pairs with some edge with expiry >= h."""
    graph = build(events, t)
    horizon = t + horizon_offset
    alive = [e for e in events if e.alive_at(t)]
    for u in NODES:
        expected = {
            e.target for e in alive if e.source == u and e.expiry >= horizon
        }
        assert set(graph.out_neighbors(u, min_expiry=horizon)) == expected


@given(events=event_trace(), t=st.integers(min_value=0, max_value=8))
@settings(max_examples=60, deadline=None)
def test_expiry_range_scan_matches_reference(events, t):
    graph = build(events, t)
    lo, hi = t + 2, t + 6
    expected = sorted(
        (e.source, e.target, int(e.expiry))
        for e in events
        if e.alive_at(t) and e.lifetime is not None and lo <= e.expiry < hi
    )
    assert sorted(graph.edges_with_expiry_in(lo, hi)) == expected


@given(events=event_trace())
@settings(max_examples=40, deadline=None)
def test_stepwise_equals_jump_advance(events):
    """Advancing one step at a time == jumping straight to the end."""
    final_time = max(e.time for e in events) + 12
    stepwise = build(events, final_time)
    jump = TDNGraph()
    by_time = {}
    for e in events:
        by_time.setdefault(e.time, []).append(e)
    for t in sorted(by_time):
        jump.advance_to(t)
        for e in by_time[t]:
            jump.add_interaction(e)
    jump.advance_to(final_time)
    assert jump.num_edges == stepwise.num_edges
    assert jump.node_set() == stepwise.node_set()
    assert sorted(jump.alive_pairs()) == sorted(stepwise.alive_pairs())
