"""Differential property suite for the pluggable fold semantics.

Hypothesis drives random time-decayed streams through every registered
fold (``count``, ``weighted_sum``, ``hop_discount``, ``time_decay``) on
every engine — the live :class:`~repro.tdn.csr.DeltaCSR` overlay, a
from-scratch :class:`~repro.tdn.csr.CSRSnapshot`, the worker-side
:class:`~repro.parallel.plane.PlaneEngine`, and the sharded executor —
and pins each against an *independent* dict-BFS reference that never
touches the bit-plane machinery: a plain level-by-level walk over
``graph.out_neighbors`` folded per :meth:`~repro.kernels.folds.Fold.
reference`.

Exactness contract: ``count`` is asserted bit-identical everywhere (the
fold routes through the pre-refactor popcount path); ``hop_discount``
and ``weighted_sum`` are bit-identical too because reference and kernel
share one canonical accumulation order (:func:`~repro.kernels.folds.
hop_discount_sum`, :func:`~repro.kernels.dense_weight_sum`).
``time_decay``'s reference computes its per-node terms in pure Python
``math.exp``, so it pins the engines to within float-ulp tolerance —
while the engines themselves (delta vs snapshot vs plane vs sharded)
must still agree *bit for bit*, which is the production guarantee.

Also pinned here: per-semantics memo isolation (two parameterizations
of one fold on one graph never share cache entries), persistence
round-trips of the oracle's semantics through JSON, and the unknown-
name rejection path.
"""

import json
import math
import os
import random
from collections import deque

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SemanticsError
from repro.influence.oracle import InfluenceOracle
from repro.kernels.folds import (
    FOLD_NAMES,
    CountFold,
    HopDiscountFold,
    TimeDecayFold,
    WeightedSumFold,
    resolve_fold,
)
from repro.parallel.plane import PlaneEngine
from repro.persistence import oracle_from_dict, oracle_to_dict
from repro.tdn.csr import CSRSnapshot
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))


def build_stream_graph(seed, num_nodes, num_events):
    """A random decayed stream with the delta engine live from step one."""
    rng = random.Random(seed)
    graph = TDNGraph()
    graph.csr()  # live engine: every mutation flows through the overlay
    t = 0
    for _ in range(num_events):
        if rng.random() < 0.25:
            t += rng.randint(1, 4)
            graph.advance_to(t)
        u, v = rng.sample(range(num_nodes), 2)
        lifetime = None if rng.random() < 0.1 else rng.randint(1, 25)
        graph.add_interaction(Interaction(f"n{u}", f"n{v}", t, lifetime))
    return graph


# ----------------------------------------------------------------------
# Independent dict references (no kernels, no numpy sweeps)
# ----------------------------------------------------------------------
def bfs_levels(graph, seed_nodes, min_expiry):
    """``node -> hop level`` by a plain dict BFS (seeds are level 0)."""
    levels = {}
    queue = deque()
    for node in seed_nodes:
        if node not in levels:
            levels[node] = 0
            queue.append(node)
    while queue:
        node = queue.popleft()
        for nxt in graph.out_neighbors(node, min_expiry):
            if nxt not in levels:
                levels[nxt] = levels[node] + 1
                queue.append(nxt)
    return levels


def reference_decay_terms(graph, lam, eff):
    """Pure-Python ``term(v)`` map for ``time_decay`` at horizon ``eff``.

    Max alive in-pair expiry per node via the graph dicts and
    ``math.exp`` — independent of ``max_in_expiries`` and numpy.
    """
    terms = {}
    for node in graph.node_set():
        best = None
        for u in graph.in_neighbors(node, eff):
            expiry = graph.max_expiry(u, node)
            if expiry >= eff and (best is None or expiry > best):
                best = expiry
        if best is None:
            terms[node] = 1.0
        elif math.isinf(best):
            terms[node] = 1.0
        else:
            terms[node] = 1.0 - math.exp(-lam * (best - eff))
    return terms


def reference_score(graph, fold, seed_nodes, eff, weights_by_node):
    """Fold a dict-BFS result per the fold's own scalar ``reference``."""
    levels = {graph.node_id(n): lvl for n, lvl in bfs_levels(graph, seed_nodes, eff).items()}
    if isinstance(fold, WeightedSumFold):
        values = np.zeros(graph.num_interned, dtype=np.float64)
        for node, weight in weights_by_node.items():
            values[graph.node_id(node)] = weight
        return fold.reference(levels, values)
    if isinstance(fold, TimeDecayFold):
        terms = reference_decay_terms(graph, fold.lam, eff)
        values = np.ones(graph.num_interned, dtype=np.float64)
        for node, term in terms.items():
            values[graph.node_id(node)] = term
        return fold.reference(levels, values)
    return fold.reference(levels)


def all_folds():
    return [
        CountFold(),
        WeightedSumFold(),
        HopDiscountFold(alpha=0.6),
        TimeDecayFold(lam=0.15),
    ]


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_nodes=st.integers(4, 20),
    num_events=st.integers(5, 90),
    horizon_offset=st.one_of(st.none(), st.integers(1, 30)),
    data=st.data(),
)
def test_every_fold_agrees_on_every_engine_and_the_dict_reference(
    seed, num_nodes, num_events, horizon_offset, data
):
    graph = build_stream_graph(seed, num_nodes, num_events)
    delta = graph.csr()
    snapshot = CSRSnapshot.build(graph)
    plane = PlaneEngine(snapshot.indptr, snapshot.indices, snapshot.expiries)
    ids = list(range(graph.num_interned))
    if not ids:
        return

    t = graph.time
    horizon = None if horizon_offset is None else float(t + horizon_offset)
    # Same caller-side clamp the oracle applies: alive edges expire at
    # t + 1 or later, so every engine answers the identical question.
    eff = max(float(t + 1), horizon) if horizon is not None else float(t + 1)

    id_sets = data.draw(
        st.lists(
            st.lists(st.sampled_from(ids), min_size=0, max_size=4),
            min_size=1,
            max_size=8,
        )
    )
    weights_by_node = {
        graph.node_of_id(i): 1.0 + (i % 7) * 0.5 for i in ids
    }
    weights = np.asarray(
        [weights_by_node[graph.node_of_id(i)] for i in ids], dtype=np.float64
    )

    for fold in all_folds():
        kwargs = {"weights": weights} if fold.needs_weights else {}
        via_delta = delta.fold_spread_sums(id_sets, horizon, fold, **kwargs)
        via_snapshot = snapshot.fold_spread_sums(id_sets, eff, fold, **kwargs)
        via_plane = plane.fold_spread_sums(id_sets, eff, fold, **kwargs)

        # Production guarantee: the three engines are bit-identical.
        assert via_delta == via_snapshot == via_plane

        expected = [
            reference_score(
                graph,
                fold,
                [graph.node_of_id(i) for i in id_set],
                eff,
                weights_by_node,
            )
            if id_set
            else 0.0
            for id_set in id_sets
        ]
        if isinstance(fold, TimeDecayFold):
            # The reference derives its terms through math.exp; numpy's
            # vectorized exp may differ in the last ulp, nothing more.
            assert via_delta == pytest.approx(expected, rel=1e-12, abs=1e-12)
        else:
            assert via_delta == expected

        if isinstance(fold, CountFold):
            # count must be *byte*-identical to the pre-fold popcount path.
            assert via_delta == [
                float(c) for c in delta.spread_counts(id_sets, horizon)
            ]


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_nodes=st.integers(4, 16),
    num_events=st.integers(5, 70),
    horizon_offset=st.one_of(st.none(), st.integers(1, 25)),
    data=st.data(),
)
def test_oracle_semantics_match_dict_reference_and_replay_protocol(
    seed, num_nodes, num_events, horizon_offset, data
):
    graph = build_stream_graph(seed, num_nodes, num_events)
    nodes = sorted(graph.node_set(), key=repr)
    if not nodes:
        return
    t = graph.time
    horizon = None if horizon_offset is None else float(t + horizon_offset)
    eff = max(float(t + 1), horizon) if horizon is not None else float(t + 1)

    sets = data.draw(
        st.lists(
            st.lists(st.sampled_from(nodes), min_size=1, max_size=3),
            min_size=1,
            max_size=6,
        )
    )

    for semantics in ["count", ("hop_discount", {"alpha": 0.7}), ("time_decay", {"lam": 0.2})]:
        fold = resolve_fold(semantics)
        oracle = InfluenceOracle(graph, semantics=semantics)
        batched = oracle.spread_many(sets, horizon)

        # spread_many replays the sequential protocol exactly.
        sequential = [
            InfluenceOracle(graph, semantics=semantics).spread(s, horizon)
            for s in sets
        ]
        assert batched == sequential

        expected = [
            reference_score(graph, fold, set(s), eff, {}) for s in sets
        ]
        if isinstance(fold, TimeDecayFold):
            assert batched == pytest.approx(expected, rel=1e-12, abs=1e-12)
        else:
            assert batched == expected
        if isinstance(fold, CountFold):
            # Unchanged public contract: count spreads stay ints.
            assert all(isinstance(value, int) for value in batched)


@pytest.fixture(scope="module")
def executor():
    from repro.parallel.executor import ShardedOracleExecutor

    executor = ShardedOracleExecutor(WORKERS, min_batch=1)
    yield executor
    executor.close()


@pytest.mark.parametrize(
    "semantics",
    ["count", ("hop_discount", {"alpha": 0.55}), ("time_decay", {"lam": 0.08})],
    ids=["count", "hop_discount", "time_decay"],
)
@pytest.mark.parametrize("graph_seed", [3, 41])
def test_sharded_fold_evaluation_is_bit_identical_to_serial(
    executor, semantics, graph_seed
):
    """OP_FSPREAD sharding is value-transparent for every semantics."""
    graph = build_stream_graph(graph_seed, 18, 160)
    nodes = sorted(graph.node_set(), key=repr)
    sets = [(node,) for node in nodes]
    sets += [tuple(nodes[i : i + 3]) for i in range(0, len(nodes) - 3, 3)]
    horizon = float(graph.time + 9)

    serial = InfluenceOracle(graph, max_cache_entries=0, semantics=semantics)
    sharded = InfluenceOracle(
        graph, max_cache_entries=0, semantics=semantics, parallel=executor
    )
    serial_values = serial.spread_many(sets, horizon)
    sharded_values = sharded.spread_many(sets, horizon)

    assert sharded_values == serial_values  # bit-identical, not approx
    assert sharded.calls == serial.calls == len(sets)


# ----------------------------------------------------------------------
# Per-semantics memo isolation
# ----------------------------------------------------------------------
def test_memo_keys_isolate_semantics_parameterizations():
    """Two parameterizations of one fold never share cache entries."""
    graph = build_stream_graph(11, 12, 80)
    node = sorted(graph.node_set(), key=repr)[0]

    sharp = InfluenceOracle(graph, semantics=("hop_discount", {"alpha": 0.3}))
    mild = InfluenceOracle(graph, semantics=("hop_discount", {"alpha": 0.9}))
    first_sharp = sharp.spread([node])
    first_mild = mild.spread([node])
    assert first_sharp != first_mild  # distinct arithmetic, distinct values

    # Cached replays return the original values unchanged.
    assert sharp.spread([node]) == first_sharp
    assert mild.spread([node]) == first_mild
    assert sharp.calls == 1 and mild.calls == 1

    # The memo key embeds the fold token, so the same seed set under the
    # same horizon maps to different entries per parameterization.
    assert sharp.fold.token() != mild.fold.token()
    key_sharp = next(iter(sharp._memo.data))
    key_mild = next(iter(mild._memo.data))
    assert key_sharp != key_mild
    assert key_sharp[:2] == key_mild[:2]  # same (horizon, nodes) prefix


def test_count_memo_keys_unchanged_by_the_fold_seam():
    """Default oracles keep the pre-refactor 2-tuple memo keys."""
    graph = build_stream_graph(11, 12, 80)
    node = sorted(graph.node_set(), key=repr)[0]
    oracle = InfluenceOracle(graph)
    oracle.spread([node])
    key = next(iter(oracle._memo.data))
    assert len(key) == 2  # (min_expiry, frozenset) — no token appended


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "semantics",
    [
        "count",
        ("hop_discount", {"alpha": 0.35}),
        ("time_decay", {"lam": 0.4}),
    ],
    ids=["count", "hop_discount", "time_decay"],
)
def test_oracle_semantics_round_trip_through_json(semantics):
    graph = build_stream_graph(23, 14, 100)
    nodes = sorted(graph.node_set(), key=repr)[:6]
    oracle = InfluenceOracle(graph, semantics=semantics)
    before = oracle.spread_many([(n,) for n in nodes])

    payload = json.loads(json.dumps(oracle_to_dict(oracle)))
    restored = oracle_from_dict(payload, graph)

    assert restored.fold == oracle.fold
    assert restored.semantics == oracle.semantics
    assert restored.spread_many([(n,) for n in nodes]) == before


def test_pre_semantics_checkpoints_default_to_count():
    """Default-fold payloads omit the key entirely, so checkpoints written
    before (and after) the fold seam are byte-identical and both restore
    to ``count``."""
    graph = build_stream_graph(23, 14, 100)
    payload = oracle_to_dict(InfluenceOracle(graph))
    assert "semantics" not in payload
    restored = oracle_from_dict(payload, graph)
    assert restored.semantics == "count"


def test_unknown_serialized_semantics_rejected_loudly():
    graph = TDNGraph()
    payload = oracle_to_dict(InfluenceOracle(graph))
    payload["semantics"] = ["entropy", {}]
    with pytest.raises(SemanticsError, match="unknown influence semantics"):
        oracle_from_dict(payload, graph)


def test_fold_registry_is_closed_and_stable():
    assert FOLD_NAMES == ("count", "hop_discount", "time_decay", "weighted_sum")
    for name in FOLD_NAMES:
        fold = resolve_fold(name)
        assert fold.name == name
        # spec round-trips through its own wire form, lists included
        # (JSON turns tuples into lists).
        assert resolve_fold(list(fold.spec())) == fold
