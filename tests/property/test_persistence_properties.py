"""Property-based round-trip tests for persistence.

Hypothesis generates arbitrary TDN traces and checkpoint positions; a
restore at *any* point must leave every future answer unchanged.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.hist_approx import HistApprox
from repro.persistence import (
    algorithm_from_dict,
    algorithm_to_dict,
    graph_from_dict,
    graph_to_dict,
)
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction

NODES = [f"n{i}" for i in range(6)]


@st.composite
def trace_and_cut(draw):
    steps = draw(st.integers(min_value=2, max_value=8))
    trace = []
    for t in range(steps):
        batch = []
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            u, v = draw(
                st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)).filter(
                    lambda p: p[0] != p[1]
                )
            )
            lifetime = draw(st.one_of(st.integers(min_value=1, max_value=8), st.none()))
            batch.append(Interaction(u, v, t, lifetime))
        trace.append((t, batch))
    cut = draw(st.integers(min_value=1, max_value=steps - 1))
    return trace, cut


@given(data=trace_and_cut())
@settings(max_examples=40, deadline=None)
def test_restore_at_any_point_preserves_future(data):
    trace, cut = data

    # Reference: uninterrupted run.
    graph_ref = TDNGraph()
    algo_ref = HistApprox(2, 0.15, graph_ref)
    for t, batch in trace:
        graph_ref.advance_to(t)
        graph_ref.add_batch(batch)
        algo_ref.on_batch(t, batch)

    # Interrupted run: serialize/deserialize at the cut, then continue.
    graph = TDNGraph()
    algo = HistApprox(2, 0.15, graph)
    for t, batch in trace[:cut]:
        graph.advance_to(t)
        graph.add_batch(batch)
        algo.on_batch(t, batch)
    graph = graph_from_dict(graph_to_dict(graph))
    algo = algorithm_from_dict(algorithm_to_dict(algo), graph)
    for t, batch in trace[cut:]:
        graph.advance_to(t)
        graph.add_batch(batch)
        algo.on_batch(t, batch)

    assert algo.query().value == algo_ref.query().value
    assert algo.query().nodes == algo_ref.query().nodes


@given(data=trace_and_cut())
@settings(max_examples=40, deadline=None)
def test_graph_round_trip_preserves_alive_state(data):
    trace, _ = data
    graph = TDNGraph()
    for t, batch in trace:
        graph.advance_to(t)
        graph.add_batch(batch)
    restored = graph_from_dict(graph_to_dict(graph))
    assert restored.time == graph.time
    assert restored.node_set() == graph.node_set()
    assert sorted(restored.alive_pairs()) == sorted(graph.alive_pairs())
    for u, v in graph.alive_pairs():
        assert restored.interaction_count(u, v) == graph.interaction_count(u, v)
        assert restored.max_expiry(u, v) == graph.max_expiry(u, v)
