"""Property-based tests for coverage functions and greedy optimizers."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.submodular.functions import CoverageFunction
from repro.submodular.greedy import (
    brute_force_optimum,
    greedy_max,
    lazy_greedy_max,
)

E_INV = 1.0 - 1.0 / 2.718281828459045


@st.composite
def coverage_instance(draw):
    num_sets = draw(st.integers(min_value=1, max_value=8))
    sets = [
        draw(st.sets(st.integers(min_value=0, max_value=9), min_size=1, max_size=4))
        for _ in range(num_sets)
    ]
    universe = sorted({x for s in sets for x in s})
    return CoverageFunction(sets), universe


@given(instance=coverage_instance(), k=st.integers(min_value=1, max_value=4))
@settings(max_examples=80, deadline=None)
def test_lazy_equals_plain_greedy(instance, k):
    cover, universe = instance
    assert (
        lazy_greedy_max(cover, universe, k).value
        == greedy_max(cover, universe, k).value
    )


@given(instance=coverage_instance(), k=st.integers(min_value=1, max_value=3))
@settings(max_examples=60, deadline=None)
def test_greedy_classic_bound(instance, k):
    cover, universe = instance
    greedy_value = greedy_max(cover, universe, k).value
    optimum = brute_force_optimum(cover, universe, k).value
    assert greedy_value >= E_INV * optimum - 1e-9


@given(instance=coverage_instance(), k=st.integers(min_value=1, max_value=3))
@settings(max_examples=60, deadline=None)
def test_dedicated_cover_matches_generic_greedy(instance, k):
    """greedy_cover's incremental gains == generic greedy's evaluations."""
    cover, universe = instance
    dedicated = cover.value(cover.greedy_cover(k))
    generic = greedy_max(cover, universe, k).value
    assert dedicated == generic


@given(
    instance=coverage_instance(),
    seeds=st.sets(st.integers(min_value=0, max_value=9), max_size=4),
    extra=st.integers(min_value=0, max_value=9),
)
@settings(max_examples=80, deadline=None)
def test_coverage_monotone(instance, seeds, extra):
    cover, _ = instance
    assert cover.value(seeds | {extra}) >= cover.value(seeds)


@given(
    instance=coverage_instance(),
    small=st.sets(st.integers(min_value=0, max_value=9), max_size=3),
    additional=st.sets(st.integers(min_value=0, max_value=9), max_size=3),
    candidate=st.integers(min_value=0, max_value=9),
)
@settings(max_examples=80, deadline=None)
def test_coverage_submodular(instance, small, additional, candidate):
    cover, _ = instance
    large = small | additional
    gain_small = cover.value(small | {candidate}) - cover.value(small)
    gain_large = cover.value(large | {candidate}) - cover.value(large)
    assert gain_small >= gain_large
