"""Property suite for the incrementally maintained delta-CSR engine.

Replays seeded random add/advance streams with the engine *live* (created
before the stream starts, so every mutation flows through the overlay and
tombstone hooks rather than into the initial base build) and checks, at
interleaved probe points:

* pre-compaction: the incremental engine's forward reachability, reverse
  (transpose-backed) ancestry, and bit-plane ``spread_counts`` all agree
  with the reference dict BFS / a from-scratch ``CSRSnapshot.build``;
* the engine's *effective* adjacency (base + overlay, stale entries
  filtered by the ``t + 1`` horizon clamp) is entry-identical to the
  graph's alive pair adjacency with its cached max expiries;
* post-compaction: the compacted base arrays are array-identical to a
  from-scratch build, forward and transpose;
* the O(1) alive-node / alive-pair counters match full recomputation.

Both the scalar and the vectorized traversal paths are exercised by
parametrizing the shared ``SCALAR_PAIR_LIMIT`` cutover.
"""

import math
import random

import numpy as np
import pytest

from repro.influence.oracle import InfluenceOracle
from repro.influence.reachability import ancestors, reachable_set
from repro.tdn.csr import CSRSnapshot
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.utils.counters import CallCounter


def replay_stream(rng, graph, num_events=220, num_nodes=28, probe_every=19,
                  infinite_fraction=0.1):
    """Yield (step, clock) probe points while mutating ``graph`` in place."""
    t = 0
    for step in range(num_events):
        if rng.random() < 0.15:
            t += rng.randint(1, 5)
            graph.advance_to(t)
        u, v = rng.sample(range(num_nodes), 2)
        lifetime = None if rng.random() < infinite_fraction else rng.randint(1, 20)
        graph.add_interaction(Interaction(f"n{u}", f"n{v}", t, lifetime))
        if step % probe_every == 0:
            yield step, t


def effective_adjacency(engine, graph):
    """Entry map {(uid, vid): max alive expiry} seen through the engine."""
    floor = graph.time + 1
    best = {}
    base = engine.base
    indptr = base.indptr
    for uid in range(base.num_nodes):
        for slot in range(indptr[uid], indptr[uid + 1]):
            expiry = base.expiries[slot]
            if expiry >= floor:
                key = (uid, int(base.indices[slot]))
                if expiry > best.get(key, -math.inf):
                    best[key] = expiry
    for uid, entries in engine._ov_out.items():  # noqa: SLF001 - test probe
        for vid, expiry in entries:
            if expiry >= floor:
                key = (uid, vid)
                if expiry > best.get(key, -math.inf):
                    best[key] = expiry
    return best


def graph_adjacency(graph):
    """The same entry map read off the dict-of-dict substrate."""
    return {
        (graph.node_id(u), graph.node_id(v)): graph._out[u][v].max_expiry
        for u, v in graph.alive_pairs()
    }


@pytest.mark.parametrize("force_vectorized", [False, True])
@pytest.mark.parametrize("seed", [3, 17, 91])
def test_incremental_engine_matches_reference(seed, force_vectorized, monkeypatch):
    if force_vectorized:
        monkeypatch.setattr(CSRSnapshot, "SCALAR_PAIR_LIMIT", 0)
    rng = random.Random(seed)
    graph = TDNGraph()
    engine = graph.csr()  # live from the start: all mutations hit the overlay
    for _step, t in replay_stream(rng, graph):
        engine = graph.csr()
        # Effective adjacency is entry-identical to the alive dict adjacency.
        assert effective_adjacency(engine, graph) == graph_adjacency(graph)
        nodes = sorted(graph.node_set(), key=repr)
        if not nodes:
            continue
        horizons = [None, t + 1, t + rng.randint(1, 25), math.inf]
        for _ in range(6):
            seeds = rng.sample(nodes, rng.randint(1, min(4, len(nodes))))
            ids = [graph.node_id(s) for s in seeds]
            horizon = rng.choice(horizons)
            expected = reachable_set(graph, seeds, horizon)
            got = {graph.node_of_id(i) for i in engine.reachable_ids(ids, horizon)}
            assert got == expected, (seeds, horizon)
            assert engine.reachable_count(ids, horizon) == len(expected)
            expected_up = ancestors(graph, seeds, horizon)
            got_up = {graph.node_of_id(i) for i in engine.ancestor_ids(ids, horizon)}
            assert got_up == expected_up, (seeds, horizon)
        # Bit-plane batch counts == per-set counts at the same horizon.
        id_sets = [[graph.node_id(n)] for n in nodes]
        id_sets.append([graph.node_id(n) for n in nodes[:3]])
        horizon = t + 2
        batched = engine.spread_counts(id_sets, horizon)
        assert batched == [engine.reachable_count(s, horizon) for s in id_sets]
        # O(1) counters match full recomputation.
        assert graph.num_nodes == len(graph.node_set())
        assert graph.num_pairs == sum(len(nbrs) for nbrs in graph._out.values())


@pytest.mark.parametrize("seed", [5, 23])
def test_compaction_is_array_identical_to_fresh_build(seed):
    rng = random.Random(seed)
    graph = TDNGraph()
    engine = graph.csr()
    compactions_seen = engine.compactions
    for _step, _t in replay_stream(rng, graph, num_events=260, probe_every=37):
        engine = graph.csr()
        # Force a compaction at the probe and compare against scratch.
        engine._compact()  # noqa: SLF001 - deliberate white-box forcing
        fresh = CSRSnapshot.build(graph)
        assert engine.base.num_nodes == fresh.num_nodes
        np.testing.assert_array_equal(engine.base.indptr, fresh.indptr)
        np.testing.assert_array_equal(engine.base.indices, fresh.indices)
        np.testing.assert_array_equal(engine.base.expiries, fresh.expiries)
        assert engine.overlay_entries == 0 and engine.tombstones == 0
        # Transpose of the compacted base == transpose of the fresh build:
        # same slot count, per-target grouping, and (target-grouped) content.
        tindptr, tindices, texpiries = engine._transpose_arrays()  # noqa: SLF001
        forder = np.argsort(fresh.indices, kind="stable")
        fsources = np.repeat(
            np.arange(fresh.num_nodes, dtype=np.int64), np.diff(fresh.indptr)
        )[forder]
        np.testing.assert_array_equal(tindices, fsources)
        np.testing.assert_array_equal(texpiries, fresh.expiries[forder])
        fcounts = np.bincount(fresh.indices, minlength=fresh.num_nodes)
        np.testing.assert_array_equal(np.diff(tindptr), fcounts)
    assert engine.compactions > compactions_seen


def test_threshold_compaction_amortizes():
    """A long stream compacts rarely; every version change does not rebuild."""
    rng = random.Random(7)
    graph = TDNGraph()
    engine = graph.csr()
    for _ in range(4000):
        u, v = rng.sample(range(200), 2)
        graph.add_interaction(Interaction(f"n{u}", f"n{v}", 0, rng.randint(1, 50)))
        graph.csr()
    assert graph.version >= 4000
    # Far fewer compactions than versions: the overlay absorbed the stream.
    assert engine.compactions < 20


def test_rebuild_mode_reproduces_pr1_cost_model():
    graph = TDNGraph(csr_mode="rebuild")
    graph.add_interaction(Interaction("a", "b", 0, 9))
    engine = graph.csr()
    builds = engine.compactions
    graph.add_interaction(Interaction("b", "c", 0, 9))
    graph.csr()
    graph.csr()  # same version: no extra rebuild
    assert engine.compactions == builds + 1
    a = graph.node_id("a")
    assert engine.reachable_count([a]) == 3


def test_invalid_csr_mode_rejected():
    with pytest.raises(ValueError, match="csr_mode"):
        TDNGraph(csr_mode="bogus")


def test_spread_many_bitplane_matches_sequential_calls_and_values():
    """Oracle batch evaluation: same values, same call counts, all backends."""
    rng = random.Random(11)
    graph = TDNGraph()
    graph.csr()
    t = 0
    for _ in range(150):
        if rng.random() < 0.2:
            t += 1
            graph.advance_to(t)
        u, v = rng.sample(range(20), 2)
        graph.add_interaction(Interaction(f"n{u}", f"n{v}", t, rng.randint(1, 15)))
    nodes = sorted(graph.node_set(), key=repr)
    candidate_sets = [(n,) for n in nodes] + [tuple(nodes[:4]), (), tuple(nodes[:4])]
    for horizon in (None, t + 3):
        for max_cache in (200_000, 0, 3):
            batched_counter = CallCounter()
            batched = InfluenceOracle(
                graph, batched_counter, max_cache_entries=max_cache
            )
            batched_values = batched.spread_many(candidate_sets, horizon)

            sequential_counter = CallCounter()
            sequential = InfluenceOracle(
                graph, sequential_counter, max_cache_entries=max_cache
            )
            sequential_values = [
                sequential.spread(s, horizon) for s in candidate_sets
            ]
            assert batched_values == sequential_values
            assert batched_counter.total == sequential_counter.total

            dict_counter = CallCounter()
            dict_oracle = InfluenceOracle(
                graph, dict_counter, backend="dict", max_cache_entries=max_cache
            )
            assert dict_oracle.spread_many(candidate_sets, horizon) == batched_values
            assert dict_counter.total == batched_counter.total
