"""Property-based tests for Theorem 1: f_t is normalized, monotone, submodular.

Hypothesis generates arbitrary small TDNs (event lists with lifetimes) and
arbitrary seed sets; the influence spread of Definition 3 must satisfy the
three properties the entire algorithmic framework rests on, at every time
and every horizon.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction

NODES = [f"n{i}" for i in range(6)]


@st.composite
def tdn_events(draw):
    """A chronological list of events over a 6-node universe."""
    count = draw(st.integers(min_value=1, max_value=14))
    events = []
    for _ in range(count):
        u, v = draw(
            st.tuples(
                st.sampled_from(NODES), st.sampled_from(NODES)
            ).filter(lambda p: p[0] != p[1])
        )
        t = draw(st.integers(min_value=0, max_value=6))
        lifetime = draw(st.integers(min_value=1, max_value=8))
        events.append(Interaction(u, v, t, lifetime))
    events.sort(key=lambda e: e.time)
    return events


def build_graph(events, upto):
    graph = TDNGraph()
    by_time = {}
    for e in events:
        by_time.setdefault(e.time, []).append(e)
    for t in range(upto + 1):
        graph.advance_to(t)
        for e in by_time.get(t, []):
            graph.add_interaction(e)
    return graph


@given(events=tdn_events(), t=st.integers(min_value=0, max_value=6))
@settings(max_examples=60, deadline=None)
def test_normalized(events, t):
    graph = build_graph(events, t)
    assert InfluenceOracle(graph).spread([]) == 0


@given(
    events=tdn_events(),
    t=st.integers(min_value=0, max_value=6),
    seeds=st.sets(st.sampled_from(NODES), max_size=4),
    extra=st.sampled_from(NODES),
)
@settings(max_examples=60, deadline=None)
def test_monotone(events, t, seeds, extra):
    graph = build_graph(events, t)
    oracle = InfluenceOracle(graph)
    assert oracle.spread(seeds | {extra}) >= oracle.spread(seeds)


@given(
    events=tdn_events(),
    t=st.integers(min_value=0, max_value=6),
    small=st.sets(st.sampled_from(NODES), max_size=2),
    additional=st.sets(st.sampled_from(NODES), max_size=2),
    candidate=st.sampled_from(NODES),
)
@settings(max_examples=80, deadline=None)
def test_submodular(events, t, small, additional, candidate):
    """Diminishing returns: gain w.r.t. S >= gain w.r.t. T for S subset T."""
    graph = build_graph(events, t)
    oracle = InfluenceOracle(graph)
    large = small | additional
    gain_small = oracle.spread(small | {candidate}) - oracle.spread(small)
    gain_large = oracle.spread(large | {candidate}) - oracle.spread(large)
    assert gain_small >= gain_large


@given(
    events=tdn_events(),
    t=st.integers(min_value=0, max_value=6),
    horizon_offset=st.integers(min_value=1, max_value=8),
    seeds=st.sets(st.sampled_from(NODES), min_size=1, max_size=3),
)
@settings(max_examples=60, deadline=None)
def test_horizon_monotone_in_expiry(events, t, horizon_offset, seeds):
    """Raising the horizon (fewer visible edges) can only shrink the spread."""
    graph = build_graph(events, t)
    oracle = InfluenceOracle(graph)
    low = oracle.spread(seeds, min_expiry=t + 1)
    high = oracle.spread(seeds, min_expiry=t + 1 + horizon_offset)
    assert high <= low


@given(
    events=tdn_events(),
    t=st.integers(min_value=0, max_value=6),
    seeds=st.sets(st.sampled_from(NODES), min_size=1, max_size=3),
)
@settings(max_examples=60, deadline=None)
def test_spread_matches_naive_reachability(events, t, seeds):
    """Oracle spread == brute-force reachability over alive edges."""
    graph = build_graph(events, t)
    alive = [(e.source, e.target) for e in events if e.alive_at(t)]
    reached = set(seeds)
    changed = True
    while changed:
        changed = False
        for u, v in alive:
            if u in reached and v not in reached:
                reached.add(v)
                changed = True
    assert InfluenceOracle(graph).spread(seeds) == len(reached)
