"""Property-based approximation-bound tests for the paper's theorems.

Hypothesis generates arbitrary small TDN traces; at every time step the
algorithms' outputs are compared against the brute-force optimum:

* Theorem 2 — SIEVEADN >= (1/2 - eps) OPT on addition-only streams;
* Theorem 4 — BASICREDUCTION >= (1/2 - eps) OPT on general TDNs;
* Theorem 7 — HISTAPPROX >= (1/3 - eps) OPT on general TDNs
  (and >= (1/2 - eps) with head refinement).

These are the paper's headline guarantees; hypothesis hunting for
counterexamples is the strongest evidence the reproduction is faithful.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.basic_reduction import BasicReduction
from repro.core.hist_approx import HistApprox
from repro.core.sieve_adn import SieveADN
from repro.influence.oracle import InfluenceOracle
from repro.submodular.functions import SpreadFunction
from repro.submodular.greedy import brute_force_optimum
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction

NODES = [f"n{i}" for i in range(6)]
MAX_LIFETIME = 5
K = 2
EPS = 0.1


@st.composite
def tdn_trace(draw, infinite_lifetimes=False):
    steps = draw(st.integers(min_value=1, max_value=7))
    trace = []
    for t in range(steps):
        batch = []
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            u, v = draw(
                st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)).filter(
                    lambda p: p[0] != p[1]
                )
            )
            if infinite_lifetimes:
                lifetime = None
            else:
                lifetime = draw(st.integers(min_value=1, max_value=MAX_LIFETIME))
            batch.append(Interaction(u, v, t, lifetime))
        trace.append((t, batch))
    return trace


def optimum_at(graph):
    oracle = InfluenceOracle(graph)
    return brute_force_optimum(
        SpreadFunction(oracle), sorted(graph.node_set(), key=repr), K
    ).value


@given(trace=tdn_trace(infinite_lifetimes=True))
@settings(max_examples=50, deadline=None)
def test_sieve_adn_half_bound_on_adns(trace):
    graph = TDNGraph()
    sieve = SieveADN(K, EPS, graph)
    for t, batch in trace:
        graph.advance_to(t)
        graph.add_batch(batch)
        sieve.on_batch(t, batch)
        optimum = optimum_at(graph)
        if optimum > 0:
            assert sieve.query().value >= (0.5 - EPS) * optimum - 1e-9


@given(trace=tdn_trace())
@settings(max_examples=50, deadline=None)
def test_basic_reduction_half_bound_on_tdns(trace):
    graph = TDNGraph()
    basic = BasicReduction(K, EPS, MAX_LIFETIME, graph)
    for t, batch in trace:
        graph.advance_to(t)
        graph.add_batch(batch)
        basic.on_batch(t, batch)
        optimum = optimum_at(graph)
        if optimum > 0:
            assert basic.query().value >= (0.5 - EPS) * optimum - 1e-9


@given(trace=tdn_trace())
@settings(max_examples=50, deadline=None)
def test_hist_approx_third_bound_on_tdns(trace):
    graph = TDNGraph()
    hist = HistApprox(K, EPS, graph)
    for t, batch in trace:
        graph.advance_to(t)
        graph.add_batch(batch)
        hist.on_batch(t, batch)
        optimum = optimum_at(graph)
        if optimum > 0:
            assert hist.query().value >= (1.0 / 3.0 - EPS) * optimum - 1e-9


@given(trace=tdn_trace())
@settings(max_examples=40, deadline=None)
def test_hist_approx_refined_half_bound(trace):
    """The paper's Section IV remark: head refinement restores (1/2 - eps)."""
    graph = TDNGraph()
    hist = HistApprox(K, EPS, graph, refine_head=True)
    for t, batch in trace:
        graph.advance_to(t)
        graph.add_batch(batch)
        hist.on_batch(t, batch)
        optimum = optimum_at(graph)
        if optimum > 0:
            assert hist.query().value >= (0.5 - EPS) * optimum - 1e-9


@given(trace=tdn_trace())
@settings(max_examples=40, deadline=None)
def test_solutions_never_exceed_true_optimum(trace):
    """Sanity: no algorithm reports a value above the brute-force optimum."""
    graph = TDNGraph()
    algorithms = [
        BasicReduction(K, EPS, MAX_LIFETIME, graph),
        HistApprox(K, EPS, graph),
    ]
    for t, batch in trace:
        graph.advance_to(t)
        graph.add_batch(batch)
        optimum = optimum_at(graph)
        for algorithm in algorithms:
            algorithm.on_batch(t, batch)
            assert algorithm.query().value <= optimum + 1e-9


@given(trace=tdn_trace())
@settings(max_examples=40, deadline=None)
def test_solution_sizes_respect_budget(trace):
    graph = TDNGraph()
    hist = HistApprox(K, EPS, graph)
    for t, batch in trace:
        graph.advance_to(t)
        graph.add_batch(batch)
        hist.on_batch(t, batch)
        assert len(hist.query().nodes) <= K
