"""Histogram quantiles pinned against a numpy reference (hypothesis).

A fixed-bucket histogram can only answer quantiles at bucket-edge
resolution, so the property is not equality with ``numpy.quantile`` but
the two-sided bracketing that defines the estimator: the reported edge
covers at least fraction ``q`` of the samples, and the next-lower edge
covers less than ``q``.
"""

from __future__ import annotations

import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import Histogram

BUCKETS = (0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0)


def _build(samples) -> Histogram:
    hist = Histogram("h", "help", BUCKETS, threading.Lock())
    for value in samples:
        hist.observe(value)
    return hist


@settings(max_examples=60, deadline=None)
@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
        min_size=1,
        max_size=200,
    ),
    q=st.sampled_from([0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99]),
)
def test_quantile_brackets_numpy_empirical_cdf(samples, q):
    hist = _build(samples)
    edge = hist.quantile(q)
    data = np.asarray(samples, dtype=np.float64)
    # The reported edge covers at least fraction q of the samples...
    assert float(np.mean(data <= edge)) >= q - 1e-12
    # ...and the next-lower finite edge covers strictly less than q.
    lower = [b for b in BUCKETS if b < edge]
    if lower:
        assert float(np.mean(data <= lower[-1])) < q


@settings(max_examples=60, deadline=None)
@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
        min_size=1,
        max_size=200,
    )
)
def test_quantile_edge_agrees_with_numpy_on_bucketized_data(samples):
    """When samples are snapped to bucket edges, the estimator is exact.

    Snapping removes the resolution gap, so our edge-valued quantile must
    equal numpy's 'inverted_cdf' quantile of the snapped data exactly.
    """
    edges = np.asarray(BUCKETS, dtype=np.float64)
    snapped = []
    for value in samples:
        covering = edges[edges >= value]
        snapped.append(float(covering[0]) if covering.size else float("inf"))
    hist = _build(snapped)
    finite = [value for value in snapped if value != float("inf")]
    for q in (0.25, 0.5, 0.9, 0.95):
        ours = hist.quantile(q)
        if ours == float("inf"):
            # More than (1-q) of the mass lies past the last finite edge;
            # numpy on the finite subset cannot express that.
            assert len(finite) < q * len(snapped) + 1e-9
            continue
        reference = float(
            np.quantile(
                np.asarray(snapped, dtype=np.float64),
                q,
                method="inverted_cdf",
            )
        )
        assert ours == reference


def test_quantile_monotone_in_q():
    hist = _build([0.1, 0.7, 3.0, 3.0, 8.0, 60.0, 150.0])
    quantiles = [hist.quantile(q) for q in (0.0, 0.25, 0.5, 0.75, 0.9, 1.0)]
    assert quantiles == sorted(quantiles)
