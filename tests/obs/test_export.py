"""Exporter contracts: Prometheus round-trip, JSON schema, CLI summary.

``parse_prometheus_text`` is deliberately strict — it accepts exactly
what ``render_prometheus`` emits — so the round-trip test doubles as a
format-regression tripwire.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import names as metric_names
from repro.obs.export import (
    JSON_SCHEMA_VERSION,
    _edges_and_counts,
    parse_prometheus_text,
)
from repro.obs.names import CATALOG
from repro.obs.registry import MetricsRegistry


@pytest.fixture
def populated() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(metric_names.ORACLE_MEMO_HITS_TOTAL).inc(42)
    registry.counter(metric_names.WORKER_RESTARTS_TOTAL).inc(2)
    registry.gauge(metric_names.INGEST_QUEUE_DEPTH).set(5)
    registry.gauge(metric_names.INGEST_EPOCH_LAG).set(1.5)
    latency = registry.histogram(metric_names.EXECUTOR_SHARD_LATENCY_SECONDS)
    for value in (0.0004, 0.003, 0.003, 0.2, 30.0):
        latency.observe(value)
    return registry


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def test_prometheus_round_trip(populated):
    families = parse_prometheus_text(populated.render_prometheus())
    # Every catalog entry appears, sampled or not, with help and type.
    assert set(families) == {spec.name for spec in CATALOG}
    for spec in CATALOG:
        assert families[spec.name]["type"] == spec.kind
        assert families[spec.name]["help"] == spec.help

    hits = families[metric_names.ORACLE_MEMO_HITS_TOTAL]["samples"]
    assert hits[metric_names.ORACLE_MEMO_HITS_TOTAL] == 42.0
    depth = families[metric_names.INGEST_QUEUE_DEPTH]["samples"]
    assert depth[metric_names.INGEST_QUEUE_DEPTH] == 5.0
    lag = families[metric_names.INGEST_EPOCH_LAG]["samples"]
    assert lag[metric_names.INGEST_EPOCH_LAG] == 1.5


def test_prometheus_histogram_samples(populated):
    families = parse_prometheus_text(populated.render_prometheus())
    family = families[metric_names.EXECUTOR_SHARD_LATENCY_SECONDS]
    samples = family["samples"]
    name = metric_names.EXECUTOR_SHARD_LATENCY_SECONDS
    assert samples[f"{name}_count"] == 5.0
    assert samples[f"{name}_sum"] == pytest.approx(30.2064)
    # Buckets are cumulative and end in the +Inf catch-all.
    edges, counts = _edges_and_counts(family)
    assert edges == sorted(edges)
    assert edges[-1] == float("inf")
    assert counts == sorted(counts)
    assert counts[-1] == 5.0
    assert samples[f'{name}_bucket{{le="+Inf"}}'] == 5.0
    # 30.0 exceeds the last finite edge: only +Inf holds all five.
    assert counts[-2] == 4.0


def test_prometheus_integral_values_have_no_decimal_point(populated):
    text = populated.render_prometheus()
    line = next(
        line
        for line in text.splitlines()
        if line.startswith(f"{metric_names.ORACLE_MEMO_HITS_TOTAL} ")
    )
    assert line.endswith(" 42")


@pytest.mark.parametrize(
    "bad",
    [
        "repro_x 1",  # sample with no preceding # TYPE
        "# TYPE repro_x summary\n",  # unknown family type
        "# COMMENT nope\n",  # unknown comment shape
        "# TYPE repro_x counter\nrepro_x one\n",  # non-numeric value
        "# TYPE repro_x counter\nrepro_x 1\nrepro_x 2\n",  # duplicate series
        '# TYPE repro_x counter\nrepro_x{shard="0"} 1\n',  # foreign label
    ],
)
def test_parser_rejects_malformed_text(bad):
    with pytest.raises(ValueError):
        parse_prometheus_text(bad)


# ----------------------------------------------------------------------
# JSON export
# ----------------------------------------------------------------------
def test_json_schema_shape(populated):
    snapshot = populated.render_json()
    assert snapshot["schema_version"] == JSON_SCHEMA_VERSION
    assert set(snapshot) == {
        "schema_version",
        "counters",
        "gauges",
        "histograms",
    }
    assert snapshot["counters"][metric_names.ORACLE_MEMO_HITS_TOTAL] == 42.0
    assert snapshot["gauges"][metric_names.INGEST_QUEUE_DEPTH] == 5.0
    hist = snapshot["histograms"][metric_names.EXECUTOR_SHARD_LATENCY_SECONDS]
    assert set(hist) == {
        "help",
        "buckets",
        "cumulative_counts",
        "sum",
        "count",
        "p50",
        "p95",
        "p99",
    }
    assert hist["count"] == 5
    assert len(hist["cumulative_counts"]) == len(hist["buckets"]) + 1


def test_json_is_serializable_and_stable(populated):
    first = json.dumps(populated.render_json(), sort_keys=True)
    second = json.dumps(populated.render_json(), sort_keys=True)
    assert first == second


# ----------------------------------------------------------------------
# CLI summary
# ----------------------------------------------------------------------
def test_summary_elides_untouched_series(populated):
    summary = populated.render_summary()
    assert metric_names.ORACLE_MEMO_HITS_TOTAL in summary
    assert metric_names.EXECUTOR_SHARD_LATENCY_SECONDS in summary
    # Series that never moved do not clutter the end-of-run table.
    assert metric_names.TASK_QUARANTINES_TOTAL not in summary


def test_summary_empty_registry():
    assert "(no samples recorded)" in MetricsRegistry().render_summary()
