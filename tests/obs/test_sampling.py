"""KernelSampler and the traversal hook: sampling math and wiring.

The counters must stay *unbiased* under sampling (1-in-``every`` records
scaled back up by ``every``) and the kernel-side hook must be inert when
disabled — the bench suite holds the latter to < 3% overhead; here we
pin the functional half.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import (
    TraversalKernel,
    disable_kernel_metrics,
    enable_kernel_metrics,
)
from repro.obs import KernelSampler
from repro.obs import names as metric_names
from repro.obs.registry import MetricsRegistry


@pytest.fixture(autouse=True)
def _uninstall_sampler():
    yield
    disable_kernel_metrics()


def test_sampler_rejects_bad_period():
    with pytest.raises(ValueError):
        KernelSampler(MetricsRegistry(), every=0)


def test_every_one_records_everything():
    registry = MetricsRegistry()
    sampler = KernelSampler(registry, every=1)
    for reached in (3, 5, 7):
        sampler.record("reach", 1, reached)
    values = registry.counter_values()
    assert values[metric_names.KERNEL_SWEEPS_TOTAL] == 3.0
    assert values[metric_names.KERNEL_SWEEP_SETS_TOTAL] == 3.0
    assert values[metric_names.KERNEL_REACHED_NODES_TOTAL] == 15.0
    hist = registry.histogram(metric_names.KERNEL_SWEEP_REACHED_NODES)
    assert hist.count == 3


def test_sampled_counters_are_rescaled():
    registry = MetricsRegistry()
    sampler = KernelSampler(registry, every=4)
    for _ in range(8):
        sampler.record("spread", 2, 10)
    values = registry.counter_values()
    # 2 recorded sweeps, each scaled by 4 -> unbiased totals.
    assert values[metric_names.KERNEL_SWEEPS_TOTAL] == 8.0
    assert values[metric_names.KERNEL_SWEEP_SETS_TOTAL] == 16.0
    assert values[metric_names.KERNEL_REACHED_NODES_TOTAL] == 80.0
    # Histogram observations are raw (shape, not volume).
    hist = registry.histogram(metric_names.KERNEL_SWEEP_REACHED_NODES)
    assert hist.count == 2


def _ring_kernel(n: int = 64) -> TraversalKernel:
    # A directed ring: node i -> (i + 1) % n, every edge alive forever.
    indptr = np.arange(n + 1, dtype=np.int64)
    indices = (np.arange(n, dtype=np.int64) + 1) % n
    expiries = np.full(n, 1e9, dtype=np.float64)
    return TraversalKernel(indptr, indices, expiries)


def test_kernel_sweeps_flow_into_the_registry():
    registry = MetricsRegistry()
    enable_kernel_metrics(every=1, registry=registry)
    kernel = _ring_kernel()
    counts = kernel.spread_counts([[0], [1], [2]], None)
    assert list(counts) == [64, 64, 64]
    values = registry.counter_values()
    assert values[metric_names.KERNEL_SWEEPS_TOTAL] > 0
    assert values[metric_names.KERNEL_REACHED_NODES_TOTAL] > 0


def test_disable_restores_silence():
    registry = MetricsRegistry()
    enable_kernel_metrics(every=1, registry=registry)
    disable_kernel_metrics()
    kernel = _ring_kernel()
    kernel.spread_counts([[0]], None)
    assert registry.counter_values()[metric_names.KERNEL_SWEEPS_TOTAL] == 0.0


def test_results_identical_with_and_without_sampling():
    kernel = _ring_kernel()
    sets = [[i, (i * 7) % 64] for i in range(16)]
    baseline = list(kernel.spread_counts(sets, None))
    enable_kernel_metrics(every=3, registry=MetricsRegistry())
    sampled = list(kernel.spread_counts(sets, None))
    disable_kernel_metrics()
    assert sampled == baseline
