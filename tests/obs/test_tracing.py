"""Span tracer: nesting, timing, rendering, thread isolation."""

from __future__ import annotations

import threading

from repro.obs import Span, current_span


def test_nesting_builds_a_tree():
    with Span("outer") as outer:
        assert current_span() is outer
        with Span("inner-a") as inner_a:
            assert current_span() is inner_a
        with Span("inner-b"):
            pass
    assert current_span() is None
    assert [child.name for child in outer.children] == ["inner-a", "inner-b"]
    assert inner_a.parent is outer
    assert outer.parent is None


def test_durations_are_set_and_nonnegative():
    with Span("outer") as outer:
        with Span("inner") as inner:
            pass
    assert inner.duration is not None and inner.duration >= 0.0
    assert outer.duration is not None and outer.duration >= inner.duration


def test_to_dict_and_report():
    with Span("outer") as outer:
        with Span("inner"):
            pass
    tree = outer.to_dict()
    assert tree["name"] == "outer"
    assert [c["name"] for c in tree["children"]] == ["inner"]
    assert tree["children"][0]["children"] == []
    rendered = outer.report()
    lines = rendered.splitlines()
    assert lines[0].startswith("outer: ")
    assert lines[1].startswith("  inner: ")


def test_open_span_reports_open():
    span = Span("pending")
    with span:
        assert "open" in span.report()
    assert "open" not in span.report()


def test_exception_still_closes_the_span():
    try:
        with Span("outer") as outer:
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert outer.duration is not None
    assert current_span() is None


def test_threads_do_not_share_a_stack():
    seen = {}

    def worker() -> None:
        seen["inside"] = current_span()
        with Span("thread-local") as span:
            seen["own"] = current_span() is span

    with Span("main-thread"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    # The worker thread saw no inherited parent and tracked its own span.
    assert seen["inside"] is None
    assert seen["own"] is True
