"""MetricsRegistry behavior: catalog lookups, drains, merges, resets.

The registry is the backbone of the worker-merge protocol, so the drain
semantics (cumulative high-water marks, nonzero-only payloads) and the
merge semantics (unknown names ignored) are pinned here exactly as the
executor relies on them.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import names as metric_names
from repro.obs.names import CATALOG, MetricSpec
from repro.obs.registry import Histogram, MetricsRegistry, metrics_registry


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


def test_catalog_preregistered(registry):
    for spec in CATALOG:
        lookup = getattr(registry, spec.kind)
        instrument = lookup(spec.name)
        assert instrument.name == spec.name
        assert instrument.help == spec.help


def test_unknown_name_raises(registry):
    with pytest.raises(KeyError, match="not in the metric catalog"):
        registry.counter("repro_no_such_series_total")
    with pytest.raises(KeyError, match="not in the metric catalog"):
        registry.gauge("repro_no_such_depth")
    with pytest.raises(KeyError, match="not in the metric catalog"):
        registry.histogram("repro_no_such_seconds")


def test_wrong_kind_lookup_raises(registry):
    # A counter name is not visible through the gauge/histogram tables.
    with pytest.raises(KeyError):
        registry.gauge(metric_names.WORKER_TASKS_TOTAL)
    with pytest.raises(KeyError):
        registry.histogram(metric_names.WORKER_TASKS_TOTAL)


def test_counter_monotone(registry):
    counter = registry.counter(metric_names.WORKER_TASKS_TOTAL)
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError, match="cannot decrease"):
        counter.inc(-1)
    assert counter.value == 3.5


def test_gauge_last_write_wins(registry):
    gauge = registry.gauge(metric_names.INGEST_QUEUE_DEPTH)
    gauge.set(7)
    gauge.set(3)
    assert gauge.value == 3.0


def test_histogram_bucketing(registry):
    hist = Histogram("h", "help", (1.0, 5.0, 10.0), threading.Lock())
    for value in (0.5, 1.0, 2.0, 7.0, 99.0):
        hist.observe(value)
    # 0.5 and 1.0 land in le=1, 2.0 in le=5, 7.0 in le=10, 99.0 in +Inf.
    assert hist.counts == [2, 1, 1, 1]
    assert hist.count == 5
    assert hist.sum == pytest.approx(109.5)


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError, match="ascending"):
        Histogram("h", "help", (5.0, 1.0), threading.Lock())


def test_quantile_edges():
    hist = Histogram("h", "help", (1.0, 5.0, 10.0), threading.Lock())
    assert hist.quantile(0.5) == 0.0  # empty histogram
    for value in (0.5, 0.5, 7.0, 20.0):
        hist.observe(value)
    assert hist.quantile(0.5) == 1.0
    assert hist.quantile(0.75) == 10.0
    assert hist.quantile(1.0) == float("inf")  # past the last finite edge
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_drain_is_cumulative(registry):
    counter = registry.counter(metric_names.WORKER_TASKS_TOTAL)
    counter.inc(3)
    first = registry.drain_counter_deltas()
    assert first == {metric_names.WORKER_TASKS_TOTAL: 3.0}
    # Nothing moved: the drain is empty, not a re-report.
    assert registry.drain_counter_deltas() == {}
    counter.inc(2)
    assert registry.drain_counter_deltas() == {
        metric_names.WORKER_TASKS_TOTAL: 2.0
    }


def test_drain_skips_untouched_counters(registry):
    registry.counter(metric_names.WORKER_TASKS_TOTAL).inc()
    deltas = registry.drain_counter_deltas()
    assert set(deltas) == {metric_names.WORKER_TASKS_TOTAL}


def test_merge_folds_deltas(registry):
    owner = MetricsRegistry()
    registry.counter(metric_names.KERNEL_SWEEPS_TOTAL).inc(10)
    registry.counter(metric_names.WORKER_TASKS_TOTAL).inc(2)
    owner.merge_counter_deltas(registry.drain_counter_deltas())
    owner.merge_counter_deltas({"repro_from_the_future_total": 5.0})
    values = owner.counter_values()
    assert values[metric_names.KERNEL_SWEEPS_TOTAL] == 10.0
    assert values[metric_names.WORKER_TASKS_TOTAL] == 2.0
    assert "repro_from_the_future_total" not in values


def test_drain_merge_round_trip_conserves_totals(registry):
    owner = MetricsRegistry()
    counter = registry.counter(metric_names.ORACLE_MEMO_HITS_TOTAL)
    for chunk in (1, 4, 7):
        counter.inc(chunk)
        owner.merge_counter_deltas(registry.drain_counter_deltas())
    assert (
        owner.counter_values()[metric_names.ORACLE_MEMO_HITS_TOTAL]
        == counter.value
        == 12.0
    )


def test_reset(registry):
    registry.counter(metric_names.WORKER_TASKS_TOTAL).inc(5)
    registry.gauge(metric_names.INGEST_QUEUE_DEPTH).set(9)
    registry.histogram(metric_names.ORACLE_CONE_SIZE_NODES).observe(3)
    registry.drain_counter_deltas()
    registry.reset()
    assert all(v == 0.0 for v in registry.counter_values().values())
    hist = registry.histogram(metric_names.ORACLE_CONE_SIZE_NODES)
    assert hist.count == 0 and hist.sum == 0.0
    # The drain high-water marks reset too, so post-reset increments drain.
    registry.counter(metric_names.WORKER_TASKS_TOTAL).inc()
    assert registry.drain_counter_deltas() == {
        metric_names.WORKER_TASKS_TOTAL: 1.0
    }


def test_register_unknown_kind_raises(registry):
    with pytest.raises(ValueError, match="unknown metric kind"):
        registry.register(MetricSpec("repro_bad", "summary", "nope", None))
    with pytest.raises(ValueError, match="needs buckets"):
        registry.register(MetricSpec("repro_bad", "histogram", "nope", None))


def test_default_registry_is_a_singleton():
    assert metrics_registry() is metrics_registry()


def test_concurrent_increments_are_not_lost(registry):
    counter = registry.counter(metric_names.WORKER_TASKS_TOTAL)

    def hammer() -> None:
        for _ in range(1_000):
            counter.inc()

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 4_000.0
