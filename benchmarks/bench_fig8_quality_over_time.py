"""Fig. 8 — solution value over time: HISTAPPROX vs Greedy vs Random.

Paper shape asserted: on every dataset, Greedy is the ceiling, HISTAPPROX
(every eps) tracks it closely, and Random is far below.
"""

from conftest import run_once

from repro.datasets.registry import dataset_names
from repro.experiments.figures import fig8


def test_fig8_quality_over_time_all_datasets(benchmark):
    result = run_once(
        benchmark,
        fig8,
        datasets=dataset_names(),
        num_events=250,
        k=10,
        epsilons=(0.1, 0.15, 0.2),
        L=150,
        p=0.01,
        seed=0,
    )
    for dataset in dataset_names():
        rows = {
            r["algorithm"]: r["mean_value"]
            for r in result.rows
            if r["dataset"] == dataset
        }
        for eps in (0.1, 0.15, 0.2):
            hist = rows[f"hist(eps={eps})"]
            assert hist <= rows["greedy"] + 1e-9, dataset
            assert hist >= 0.7 * rows["greedy"], dataset
            assert hist > rows["random"], dataset
