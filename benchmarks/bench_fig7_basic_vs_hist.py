"""Fig. 7 — BASICREDUCTION vs HISTAPPROX across lifetime skew ``p``.

Paper shapes asserted:
  (a/c) HISTAPPROX's solution value stays within a few percent of
        BASICREDUCTION's (the paper reports a ratio > 0.98 at full scale);
  (b/d) BASICREDUCTION's oracle calls *decrease* as ``p`` grows (short
        lifetimes fan out to fewer instances), and HISTAPPROX needs a
        small fraction of BASICREDUCTION's calls (< 0.1 at the paper's
        fan-out; the band scales with L — see EXPERIMENTS.md).
"""

from conftest import run_once

from repro.experiments.figures import fig7


def test_fig7_value_and_oracle_calls(benchmark):
    result = run_once(
        benchmark,
        fig7,
        datasets=("brightkite", "gowalla"),
        num_events=300,
        k=10,
        epsilon=0.1,
        L=150,
        p_values=(0.005, 0.01, 0.02, 0.04),
        seed=0,
    )
    for dataset in ("brightkite", "gowalla"):
        rows = [r for r in result.rows if r["dataset"] == dataset]
        # Value closeness (scaled-down tolerance of the paper's 0.98).
        assert all(r["value_ratio"] > 0.9 for r in rows)
        # Efficiency: HISTAPPROX uses a small fraction of BASIC's calls.
        assert all(r["calls_ratio"] < 0.5 for r in rows)
        # BASIC's cost decreases as p grows (more short lifetimes).
        basic_calls = [r["calls_basic"] for r in rows]
        assert basic_calls == sorted(basic_calls, reverse=True)
