"""Fig. 10 — cumulative oracle-call ratio HISTAPPROX / Greedy over time.

Paper shape asserted: the cumulative ratio stays below 1 on every dataset
and decreases as eps grows (at eps=0.2 the paper reports 5-15x fewer
calls; the exact band depends on the greedy candidate-pool size, which
scales with the stream — see EXPERIMENTS.md).
"""

from conftest import run_once

from repro.datasets.registry import dataset_names
from repro.experiments.figures import fig10


def test_fig10_cumulative_call_ratio(benchmark):
    result = run_once(
        benchmark,
        fig10,
        datasets=dataset_names(),
        num_events=250,
        k=10,
        epsilons=(0.1, 0.2),
        L=150,
        p=0.01,
        seed=0,
    )
    for dataset in dataset_names():
        rows = {
            r["algorithm"]: r["final_calls_ratio"]
            for r in result.rows
            if r["dataset"] == dataset
        }
        assert rows["hist(eps=0.1)"] < 1.0, dataset
        assert rows["hist(eps=0.2)"] < 1.0, dataset
        # Larger eps => fewer thresholds and instances => fewer calls.
        assert rows["hist(eps=0.2)"] <= rows["hist(eps=0.1)"] * 1.1, dataset
