"""Fig. 12 — HISTAPPROX vs Greedy across maximum lifetimes ``L``.

Paper shape asserted: L barely affects either ratio (the geometric
lifetime's tail mass beyond the mean is negligible, so raising the cap
changes nothing material).
"""

from conftest import run_once

from repro.experiments.figures import fig12


def test_fig12_lifetime_cap_sweep(benchmark):
    L_values = (75, 150, 300, 600)
    result = run_once(
        benchmark,
        fig12,
        datasets=("brightkite", "gowalla"),
        num_events=250,
        k=10,
        epsilon=0.2,
        L_values=L_values,
        p=0.01,
        seed=0,
    )
    for dataset in ("brightkite", "gowalla"):
        rows = [r for r in result.rows if r["dataset"] == dataset]
        values = [r["value_ratio"] for r in rows]
        calls = [r["calls_ratio"] for r in rows]
        # Flatness: spread across the sweep stays inside a modest band.
        assert max(values) - min(values) < 0.25, dataset
        assert max(calls) / max(min(calls), 1e-9) < 3.0, dataset
        assert all(v >= 0.7 for v in values), dataset
