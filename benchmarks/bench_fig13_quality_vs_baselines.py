"""Fig. 13 — solution quality of HISTAPPROX / IMM / TIM+ / DIM vs Greedy.

Paper shapes asserted: HISTAPPROX, IMM and TIM+ produce high-quality
solutions across the k and L sweeps; DIM is the weakest and least stable
of the four, and is worse on the StackOverflow-style high-churn workload
than on Twitter-Higgs.
"""

from statistics import mean

from conftest import run_once

from repro.experiments.figures_baselines import fig13


def test_fig13_quality_comparison(benchmark):
    result = run_once(
        benchmark,
        fig13,
        datasets=("twitter-higgs", "stackoverflow-c2q"),
        num_events=250,
        k_values=(5, 10, 20),
        L_values=(75, 150, 300),
        k_fixed=10,
        L_fixed=150,
        epsilon=0.3,
        p=0.01,
        seed=0,
        query_interval=25,
    )
    by_dataset = {}
    for row in result.rows:
        by_dataset.setdefault(row["dataset"], []).append(row)
    for dataset, rows in by_dataset.items():
        hist_mean = mean(r["ratio_hist"] for r in rows)
        dim_mean = mean(r["ratio_dim"] for r in rows)
        assert hist_mean >= 0.75, dataset
        assert mean(r["ratio_imm"] for r in rows) >= 0.55, dataset
        assert mean(r["ratio_tim+"] for r in rows) >= 0.55, dataset
        # DIM is the weakest method on average.
        assert dim_mean <= hist_mean, dataset
    # DIM's instability shows on the high-churn QA workload.
    dim_higgs = mean(r["ratio_dim"] for r in by_dataset["twitter-higgs"])
    dim_qa = mean(r["ratio_dim"] for r in by_dataset["stackoverflow-c2q"])
    assert dim_qa <= dim_higgs + 0.15
