"""Table I — dataset summary: paper counts vs generated stand-ins."""

from conftest import run_once

from repro.experiments.figures import table1


def test_table1_dataset_summary(benchmark):
    result = run_once(benchmark, table1, num_events=1_000, seed=0)
    assert len(result.rows) == 6
    for row in result.rows:
        # Stand-ins realize the requested event count and a non-trivial
        # node population for every paper dataset.
        assert row["generated_interactions"] == 1_000
        assert row["generated_nodes"] >= 100
