"""Fig. 14 — stream-processing throughput (edges/second) per algorithm.

Paper shapes asserted, with a query at every step (continuous tracking):
HISTAPPROX achieves the highest throughput; the re-indexing methods IMM
and TIM+ the lowest; Greedy and DIM sit between.  Absolute edges/sec are
orders of magnitude below the paper's C++ numbers (pure-Python substrate);
the ordering is the reproduced claim.
"""

from statistics import mean

from conftest import run_once

from repro.experiments.figures_baselines import fig14


def test_fig14_throughput_ordering(benchmark):
    result = run_once(
        benchmark,
        fig14,
        datasets=("twitter-higgs", "stackoverflow-c2q"),
        num_events=150,
        k_values=(5, 10, 20),
        L_values=(75, 150),
        k_fixed=10,
        L_fixed=150,
        epsilon=0.3,
        p=0.01,
        seed=0,
        query_interval=1,
    )
    hist = mean(r["tput_hist"] for r in result.rows)
    greedy = mean(r["tput_greedy"] for r in result.rows)
    dim = mean(r["tput_dim"] for r in result.rows)
    imm = mean(r["tput_imm"] for r in result.rows)
    tim = mean(r["tput_tim+"] for r in result.rows)
    assert hist > greedy
    assert hist > dim
    assert hist > imm * 2
    assert hist > tim * 2
    # Re-indexing methods are the slowest tier.
    assert imm < min(hist, greedy, dim) * 1.1
    assert tim < min(hist, greedy, dim) * 1.1
