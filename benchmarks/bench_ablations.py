"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify (1) the head-refinement remark
of Section IV, (2) the changed-node derivation mode, (3) the interchange
greedy's behaviour under churn (the Related Work claim), and (4) the eps
quality/efficiency trade-off curve.
"""

from conftest import run_once

from repro.experiments.ablations import (
    changed_mode,
    epsilon_grid,
    head_refinement,
    interchange,
)


def test_ablation_head_refinement(benchmark):
    result = run_once(
        benchmark,
        head_refinement,
        datasets=("brightkite", "twitter-hk"),
        num_events=250,
        k=10,
        epsilon=0.2,
        L=150,
        p=0.01,
        seed=0,
    )
    for dataset in ("brightkite", "twitter-hk"):
        rows = {
            r["variant"]: r for r in result.rows if r["dataset"] == dataset
        }
        # Refinement may only help quality, at extra oracle cost.
        assert (
            rows["hist+refine"]["value_ratio"]
            >= rows["hist"]["value_ratio"] - 0.02
        ), dataset
        assert rows["hist+refine"]["calls"] >= rows["hist"]["calls"], dataset


def test_ablation_changed_mode(benchmark):
    result = run_once(
        benchmark,
        changed_mode,
        datasets=("twitter-hk", "stackoverflow-c2q"),
        num_events=250,
        k=10,
        epsilon=0.2,
        L=150,
        p=0.01,
        seed=0,
    )
    for dataset in ("twitter-hk", "stackoverflow-c2q"):
        rows = {r["mode"]: r for r in result.rows if r["dataset"] == dataset}
        # The sources heuristic must be cheaper; ancestors is the
        # paper-faithful exact superset.
        assert (
            rows["sources"]["calls_ratio_vs_greedy"]
            <= rows["ancestors"]["calls_ratio_vs_greedy"] + 1e-9
        ), dataset
        assert rows["ancestors"]["value_ratio"] >= 0.7, dataset


def test_ablation_interchange_under_churn(benchmark):
    result = run_once(
        benchmark,
        interchange,
        datasets=("twitter-higgs", "stackoverflow-c2a"),
        num_events=250,
        k=10,
        epsilon=0.2,
        L=150,
        p=0.01,
        seed=0,
        query_interval=10,
    )
    for dataset in ("twitter-higgs", "stackoverflow-c2a"):
        rows = {
            r["algorithm"]: r for r in result.rows if r["dataset"] == dataset
        }
        # The paper's Related-Work claim: swap-based maintenance pays far
        # more oracle calls than the streaming approach under churn.
        assert rows["interchange"]["calls"] > 2 * rows["hist"]["calls"], dataset


def test_ablation_epsilon_tradeoff(benchmark):
    epsilons = (0.05, 0.1, 0.2, 0.4)
    result = run_once(
        benchmark,
        epsilon_grid,
        dataset="gowalla",
        num_events=250,
        k=10,
        epsilons=epsilons,
        L=150,
        p=0.01,
        seed=0,
    )
    calls = [row["calls"] for row in result.rows]
    values = [row["value_ratio"] for row in result.rows]
    # Efficiency improves with eps end to end (neighbouring eps values can
    # tie within noise at this scale, so only the endpoints are ordered
    # strictly).
    assert calls[-1] < calls[0]
    assert all(b <= a * 1.05 for a, b in zip(calls, calls[1:]))
    # Quality stays bounded and does not *gain* from larger eps.
    assert values[-1] <= values[0] + 0.1
    assert all(v >= 0.7 for v in values)
