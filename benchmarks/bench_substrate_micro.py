"""Micro-benchmarks for the substrate hot paths.

Not paper artifacts — these watch the operations every algorithm's cost
model bottoms out in: TDN ingestion/expiry, one oracle BFS, the changed-
node reverse BFS, and the SCC batch-spread engine versus a per-node BFS
sweep.  Regressions here silently inflate every figure, so they get their
own timings.
"""

import random

from repro.influence.fast_spread import all_singleton_spreads
from repro.influence.oracle import InfluenceOracle
from repro.influence.changed import changed_nodes
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


def build_events(num_events=3_000, num_nodes=400, max_lifetime=300, seed=5):
    rng = random.Random(seed)
    events = []
    for t in range(num_events):
        u, v = rng.sample(range(num_nodes), 2)
        events.append(Interaction(f"n{u}", f"n{v}", t, rng.randint(1, max_lifetime)))
    return events


def build_graph(events):
    graph = TDNGraph()
    for event in events:
        graph.advance_to(event.time)
        graph.add_interaction(event)
    return graph


def test_graph_ingestion_and_expiry(benchmark):
    """Full replay: advance + insert 3k events with rolling expiries."""
    events = build_events()

    def replay():
        graph = build_graph(events)
        return graph.num_edges

    alive = benchmark(replay)
    assert alive > 0


def test_oracle_bfs(benchmark):
    """One uncached spread evaluation on a ~decayed 400-node graph."""
    graph = build_graph(build_events())
    oracle = InfluenceOracle(graph)
    seeds = sorted(graph.node_set(), key=repr)[:10]

    def evaluate():
        oracle.invalidate()  # force a real BFS each round
        return oracle.spread(seeds)

    value = benchmark(evaluate)
    assert value >= len(seeds)


def test_changed_nodes_reverse_bfs(benchmark):
    """Ancestor computation for a 10-edge batch (SIEVEADN's per-batch prep)."""
    events = build_events()
    graph = build_graph(events)
    batch = events[-10:]

    result = benchmark(lambda: changed_nodes(graph, batch, mode="ancestors"))
    assert result


def test_fast_spread_vs_bfs_sweep(benchmark):
    """SCC batch engine must beat one-BFS-per-node by a wide margin."""
    import time

    graph = build_graph(build_events())

    fast = benchmark(lambda: all_singleton_spreads(graph))

    # Reference sweep, timed once outside the benchmark loop.
    oracle = InfluenceOracle(graph)
    started = time.perf_counter()
    sweep = {node: oracle.spread([node]) for node in graph.node_set()}
    sweep_seconds = time.perf_counter() - started
    assert fast == sweep
    # The batch engine's advantage is the point of its existence; at this
    # size it is typically 5-50x. Record it for the JSON export.
    benchmark.extra_info["bfs_sweep_seconds"] = round(sweep_seconds, 4)
