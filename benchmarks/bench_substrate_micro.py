"""Micro-benchmarks for the substrate hot paths.

Not paper artifacts — these watch the operations every algorithm's cost
model bottoms out in: TDN ingestion/expiry, one oracle BFS, the changed-
node reverse BFS, the SCC batch-spread engine versus a per-node BFS sweep,
sparse-timestamp clock advancement, the dict-vs-CSR oracle backends on a
50k-edge stream, the incremental delta-CSR engine versus the PR 1
rebuild-per-version engine on an ingestion-heavy stream, the bit-plane
batched singleton sweep versus sequential per-set BFS, the weighted
bit-plane sweep versus per-set reachable-id weight folds, the
sharded 4-worker ``spread_many`` versus the serial bit-plane engine,
and the generic fold route under ``count`` semantics versus the direct
popcount path it must not tax.  Where numba is installed, two compiled-
backend gates additionally pin the native scalar frontier walk and the
native bit-plane sweep at >= 3x their python twins on the same stream
(they self-skip elsewhere, so the module needs no ``[native]`` extra).
Kernel-bound comparisons additionally gate their speedup ratios against
the checked-in PR 4 snapshot (:func:`assert_kernel_parity`), so the
traversal-kernel unification can never silently erode a margin.
Regressions here silently inflate every figure, so they get their own
timings.
"""

import json
import os
import random
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.sieve_adn import SieveADN
from repro.datasets.synthetic import retweet_stream
from repro.influence.fast_spread import all_singleton_spreads
from repro.influence.oracle import InfluenceOracle
from repro.influence.changed import changed_nodes
from repro.influence.weighted import WeightedInfluenceOracle
from repro.kernels import dense_weight_sum, native_available
from repro.tdn.csr import DeltaCSR
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.tdn.lifetimes import UniformLifetime

#: The compiled-backend gates self-skip where numba is absent, so this
#: module passes identically with or without the ``[native]`` extra; the
#: CI native leg is where the 3x floors actually assert.
NATIVE_GATE = pytest.mark.skipif(
    not native_available(),
    reason="numba unavailable (pip install repro[native])",
)

#: The last pre-unification perf snapshot (PR 4).  The kernel-parity
#: checks assert that the unified engines keep at least half of each
#: recorded *speedup ratio* — ratios, not wall times, so the gate is
#: meaningful on hardware other than the machine that wrote the snapshot,
#: and 0.5x slack keeps runner noise from flipping it while still
#: catching a consolidation that genuinely slowed a kernel down.
PR4_SNAPSHOT = Path(__file__).parent / "results" / "BENCH_pr4_substrate_micro.json"


def pr4_speedup(benchmark_name):
    """The snapshot's recorded speedup for one benchmark (None if absent)."""
    if not PR4_SNAPSHOT.exists():
        return None
    try:
        data = json.loads(PR4_SNAPSHOT.read_text())
    except (OSError, ValueError):
        return None
    for bench in data.get("benchmarks", []):
        if bench.get("name") == benchmark_name:
            return bench.get("extra_info", {}).get("speedup")
    return None


def assert_kernel_parity(benchmark, name, speedup):
    """Gate ``speedup`` against the PR 4 snapshot's recorded ratio."""
    recorded = pr4_speedup(name)
    benchmark.extra_info["pr4_speedup"] = recorded
    if recorded:
        floor = 0.5 * recorded
        assert speedup >= floor, (
            f"kernel parity: {name} speedup {speedup:.2f}x fell below half "
            f"of the PR 4 snapshot's {recorded:.2f}x"
        )


def build_events(num_events=3_000, num_nodes=400, max_lifetime=300, seed=5):
    rng = random.Random(seed)
    events = []
    for t in range(num_events):
        u, v = rng.sample(range(num_nodes), 2)
        events.append(Interaction(f"n{u}", f"n{v}", t, rng.randint(1, max_lifetime)))
    return events


def build_graph(events):
    graph = TDNGraph()
    for event in events:
        graph.advance_to(event.time)
        graph.add_interaction(event)
    return graph


def test_graph_ingestion_and_expiry(benchmark):
    """Full replay: advance + insert 3k events with rolling expiries."""
    events = build_events()

    def replay():
        graph = build_graph(events)
        return graph.num_edges

    alive = benchmark(replay)
    assert alive > 0


def test_oracle_bfs(benchmark):
    """One uncached spread evaluation on a ~decayed 400-node graph."""
    graph = build_graph(build_events())
    oracle = InfluenceOracle(graph)
    seeds = sorted(graph.node_set(), key=repr)[:10]

    def evaluate():
        oracle.invalidate()  # force a real BFS each round
        return oracle.spread(seeds)

    value = benchmark(evaluate)
    assert value >= len(seeds)


def test_changed_nodes_reverse_bfs(benchmark):
    """Ancestor computation for a 10-edge batch (SIEVEADN's per-batch prep)."""
    events = build_events()
    graph = build_graph(events)
    batch = events[-10:]

    result = benchmark(lambda: changed_nodes(graph, batch, mode="ancestors"))
    assert result


def test_fast_spread_vs_bfs_sweep(benchmark):
    """SCC batch engine must beat one-BFS-per-node by a wide margin."""
    graph = build_graph(build_events())

    fast = benchmark(lambda: all_singleton_spreads(graph))

    # Reference sweep, timed once outside the benchmark loop.
    oracle = InfluenceOracle(graph)
    started = time.perf_counter()
    sweep = {node: oracle.spread([node]) for node in graph.node_set()}
    sweep_seconds = time.perf_counter() - started
    assert fast == sweep
    # The batch engine's advantage is the point of its existence; at this
    # size it is typically 5-50x. Record it for the JSON export.
    benchmark.extra_info["bfs_sweep_seconds"] = round(sweep_seconds, 4)


def test_sparse_clock_advance(benchmark):
    """advance_to over a 10^7-step gap: O(expired), never O(Δt)."""

    def jump():
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 5))
        graph.add_interaction(Interaction("b", "c", 0, 10_000_000))
        graph.add_interaction(Interaction("c", "d", 0, None))
        removed = graph.advance_to(9_999_999)
        return removed, graph.num_edges

    removed, alive = benchmark(jump)
    assert (removed, alive) == (1, 2)


def build_50k_stream(num_events=50_000, num_users=3_000, seed=7):
    """The 50k-edge synthetic stream the backend comparison runs on.

    Long uniform lifetimes keep most of the stream alive at the end of the
    replay, so the evaluation graph is a genuinely large multi-hop network
    (~35k alive directed pairs) rather than a decayed remnant.
    """
    events = retweet_stream(num_users, num_events, seed=seed)
    policy = UniformLifetime(20_000, 60_000, seed=seed + 1)
    graph = TDNGraph()
    for event in events:
        event = event if event.lifetime is not None else policy.assign(event)
        graph.advance_to(event.time)
        graph.add_interaction(event)
    return graph


def test_oracle_throughput_dict_vs_csr(benchmark):
    """CSR backend must deliver >= 3x oracle-evaluation throughput.

    Both backends evaluate the same batch of candidate sets (uncached, so
    every evaluation is a real traversal) on the 50k-edge stream, and both
    must return identical values; a SIEVEADN candidate sweep on top must
    produce the identical Solution.  The 3x floor is the acceptance bar
    for the compact engine — the dict backend stays as the reference.
    Each side is timed best-of-3 so a noisy shared CI runner cannot flip
    the assertion (the observed margin is well above the floor).
    """
    graph = build_50k_stream()
    nodes = sorted(graph.node_set(), key=repr)
    candidate_sets = [(node,) for node in nodes[:150]]
    candidate_sets += [tuple(nodes[i : i + 5]) for i in range(0, 100, 5)]
    horizon = graph.time + 10_000

    def evaluate(backend):
        oracle = InfluenceOracle(graph, backend=backend, max_cache_entries=0)
        values = oracle.spread_many(candidate_sets, horizon)
        return values, oracle.calls

    def best_of(runs, func):
        best = float("inf")
        result = None
        for _ in range(runs):
            started = time.perf_counter()
            result = func()
            best = min(best, time.perf_counter() - started)
        return result, best

    graph.csr()  # do not bill the one-off snapshot build to either side
    (dict_values, dict_calls), dict_seconds = best_of(3, lambda: evaluate("dict"))
    (csr_values, csr_calls), csr_seconds = best_of(3, lambda: evaluate("csr"))
    # One more recorded round so the timing lands in the JSON export.
    benchmark.pedantic(lambda: evaluate("csr"), rounds=1, iterations=1)

    assert csr_values == dict_values
    assert csr_calls == dict_calls == len(candidate_sets)

    speedup = dict_seconds / csr_seconds
    benchmark.extra_info["alive_pairs"] = graph.num_pairs
    benchmark.extra_info["dict_seconds"] = round(dict_seconds, 4)
    benchmark.extra_info["csr_seconds"] = round(csr_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\noracle evaluation on {graph.num_pairs} alive pairs: "
        f"dict {dict_seconds:.3f}s, csr {csr_seconds:.3f}s ({speedup:.1f}x)"
    )
    assert speedup >= 3.0, f"CSR speedup {speedup:.2f}x below the 3x floor"
    # Kernel parity: the unified kernel must keep the CSR engine's margin
    # over the dict reference relative to the PR 4 snapshot.
    assert_kernel_parity(benchmark, "test_oracle_throughput_dict_vs_csr", speedup)

    # Identical tracker solutions on the same stream-built graph: one
    # SIEVEADN candidate sweep per backend, same candidates, same horizon.
    solutions = {}
    for backend in ("dict", "csr"):
        sieve = SieveADN(5, 0.25, graph, InfluenceOracle(graph, backend=backend))
        sieve.process_candidates(nodes[:80])
        solutions[backend] = sieve.query()
    assert solutions["csr"] == solutions["dict"]
    benchmark.extra_info["solution_value"] = solutions["csr"].value


def _best_of(runs, func):
    best = float("inf")
    result = None
    for _ in range(runs):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return result, best


def test_ingestion_delta_vs_rebuild(benchmark):
    """Incremental delta-CSR must deliver >= 3x ingestion-heavy throughput.

    The scenario is the engine's worst case under the PR 1 design: a
    50k-edge stream replayed in small batches with oracle evaluations
    interleaved after *every* batch, so the rebuild-per-version engine
    pays a full O(V + P) snapshot build per batch while the delta engine
    appends O(batch) overlay entries and compacts only when the overlay
    fraction crosses its threshold.  Results (spreads and oracle call
    counts) must be identical; the 3x floor is the acceptance bar (the
    observed margin is ~5x, and best-of-2 keeps a noisy runner from
    flipping the assertion).
    """
    num_events, batch_size, probes = 50_000, 100, 3

    def replay(csr_mode):
        events = retweet_stream(3_000, num_events, seed=7)
        policy = UniformLifetime(20_000, 60_000, seed=8)
        graph = TDNGraph(csr_mode=csr_mode)
        oracle = InfluenceOracle(graph, max_cache_entries=0)
        checksum = 0
        for i in range(0, len(events), batch_size):
            chunk = [
                e if e.lifetime is not None else policy.assign(e)
                for e in events[i : i + batch_size]
            ]
            graph.advance_to(chunk[-1].time)
            for event in chunk:
                graph.add_interaction(event)
            horizon = graph.time + 55_000
            sets = [(event.source,) for event in chunk[:probes]]
            checksum += sum(oracle.spread_many(sets, horizon))
        return checksum, oracle.calls, graph.csr().compactions

    (delta_sum, delta_calls, delta_compactions), delta_seconds = _best_of(
        2, lambda: replay("delta")
    )
    (rebuild_sum, rebuild_calls, rebuild_compactions), rebuild_seconds = _best_of(
        2, lambda: replay("rebuild")
    )
    # One recorded round so the timing lands in the JSON export.
    benchmark.pedantic(lambda: replay("delta"), rounds=1, iterations=1)

    assert delta_sum == rebuild_sum
    assert delta_calls == rebuild_calls == probes * (num_events // batch_size)
    assert delta_compactions < rebuild_compactions

    speedup = rebuild_seconds / delta_seconds
    benchmark.extra_info["delta_seconds"] = round(delta_seconds, 4)
    benchmark.extra_info["rebuild_seconds"] = round(rebuild_seconds, 4)
    benchmark.extra_info["delta_compactions"] = delta_compactions
    benchmark.extra_info["rebuild_compactions"] = rebuild_compactions
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\ningestion-heavy replay ({num_events} edges, batch {batch_size}): "
        f"rebuild {rebuild_seconds:.3f}s ({rebuild_compactions} builds), "
        f"delta {delta_seconds:.3f}s ({delta_compactions} compactions) "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 3.0, f"delta-CSR speedup {speedup:.2f}x below the 3x floor"
    assert_kernel_parity(benchmark, "test_ingestion_delta_vs_rebuild", speedup)


def build_cascade_forest_events(num_events=50_000, num_trees=256, seed=13):
    """A 50k-edge addition-only cascade forest (Twitter-thread style).

    Each event attaches a fresh retweeter under a uniformly random existing
    member of a random cascade tree, so forward cones (subtree spreads) are
    large and multi-hop while *reverse* cones (the path back to the root)
    stay short — the regime the delta-aware memo exploits: a batch touches
    a handful of cascades and every other cascade's spreads provably keep
    their cached values.
    """
    rng = random.Random(seed)
    members = [[f"c{i}r"] for i in range(num_trees)]
    events = []
    for t in range(num_events):
        tree_index = rng.randrange(num_trees)
        tree = members[tree_index]
        parent = tree[rng.randrange(len(tree))]
        child = f"c{tree_index}n{t}"
        events.append(Interaction(parent, child, t, None))
        tree.append(child)
    return events


def test_memo_retention_delta_vs_wholesale_clear(benchmark):
    """Delta-aware memoization must beat wholesale clearing by >= 2x.

    The scenario is a monitoring workload on the 50k-edge cascade-forest
    stream: after the bulk of the stream has been ingested, small batches
    keep arriving (8 edges each) and after every batch a fixed watchlist of
    192 cascade roots is re-evaluated through ``oracle.spread`` — the
    pattern of a tracker's query path re-reading its sieve sets.  Under
    ``memo_mode="version"`` every batch clears the memo table and all 192
    spreads re-traverse; under ``memo_mode="delta"`` only roots whose
    cascade the batch touched are evicted (the dirty-cone contract), so a
    handful of re-evaluations per batch replaces the full sweep.  Values
    must be identical; the 2x floor is deliberately far below the observed
    margin so a noisy runner cannot flip it.
    """
    events = build_cascade_forest_events()
    warmup, tail = events[:49_680], events[49_680:]
    batch_size, pool_size = 8, 192

    def replay(memo_mode):
        graph = TDNGraph()
        for event in warmup:
            graph.advance_to(event.time)
            graph.add_interaction(event)
        oracle = InfluenceOracle(graph, memo_mode=memo_mode)
        roots = [f"c{i}r" for i in range(pool_size)]
        per_round_values = []
        for i in range(0, len(tail), batch_size):
            chunk = tail[i : i + batch_size]
            graph.advance_to(chunk[-1].time)
            for event in chunk:
                graph.add_interaction(event)
            per_round_values.append([oracle.spread([root]) for root in roots])
        return per_round_values, oracle.calls

    (delta_values, delta_calls), delta_seconds = _best_of(2, lambda: replay("delta"))
    (version_values, version_calls), version_seconds = _best_of(
        2, lambda: replay("version")
    )
    # One recorded round so the timing lands in the JSON export.
    benchmark.pedantic(lambda: replay("delta"), rounds=1, iterations=1)

    assert delta_values == version_values
    assert delta_calls < version_calls

    speedup = version_seconds / delta_seconds
    benchmark.extra_info["delta_seconds"] = round(delta_seconds, 4)
    benchmark.extra_info["version_seconds"] = round(version_seconds, 4)
    benchmark.extra_info["delta_calls"] = delta_calls
    benchmark.extra_info["version_calls"] = version_calls
    benchmark.extra_info["speedup"] = round(speedup, 2)
    rounds = len(tail) // batch_size
    print(
        f"\nwatchlist monitoring ({rounds} rounds x {pool_size} spreads): "
        f"version-clear {version_seconds:.3f}s ({version_calls} calls), "
        f"delta-retain {delta_seconds:.3f}s ({delta_calls} calls) "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 2.0, f"retained-memo speedup {speedup:.2f}x below the 2x floor"


def test_bitplane_vs_sequential_singleton_sweep(benchmark):
    """Batched bit-plane ``spread_many`` must beat sequential spreads.

    Same 150-singleton sweep on the 50k-edge stream graph: the sequential
    side issues one per-set BFS through ``oracle.spread``; the batched
    side packs the sets into uint64 visited-mask planes (64 per shared
    traversal).  Values and call counts must be identical — only the
    physical traversal is shared.  The 2x floor is deliberately far below
    the observed ~5x so runner noise cannot flip it.
    """
    graph = build_50k_stream()
    nodes = sorted(graph.node_set(), key=repr)
    candidate_sets = [(node,) for node in nodes[:150]]
    horizon = graph.time + 10_000
    graph.csr()  # engine build billed to neither side

    def sequential():
        oracle = InfluenceOracle(graph, max_cache_entries=0)
        return [oracle.spread(s, horizon) for s in candidate_sets], oracle.calls

    def batched():
        oracle = InfluenceOracle(graph, max_cache_entries=0)
        return oracle.spread_many(candidate_sets, horizon), oracle.calls

    (seq_values, seq_calls), seq_seconds = _best_of(3, sequential)
    (bat_values, bat_calls), bat_seconds = _best_of(3, batched)
    benchmark.pedantic(batched, rounds=1, iterations=1)

    assert bat_values == seq_values
    assert bat_calls == seq_calls == len(candidate_sets)

    speedup = seq_seconds / bat_seconds
    benchmark.extra_info["sequential_seconds"] = round(seq_seconds, 4)
    benchmark.extra_info["bitplane_seconds"] = round(bat_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\nsingleton sweep of {len(candidate_sets)} sets: sequential "
        f"{seq_seconds:.3f}s, bit-plane {bat_seconds:.3f}s ({speedup:.1f}x)"
    )
    assert speedup >= 2.0, f"bit-plane speedup {speedup:.2f}x below the 2x floor"
    # Kernel parity: unification must not have eroded the bit-plane
    # engine's margin over sequential sweeps relative to PR 4.
    assert_kernel_parity(
        benchmark, "test_bitplane_vs_sequential_singleton_sweep", speedup
    )


def test_weighted_bitplane_vs_per_set_reachable(benchmark):
    """Weighted bit-plane batching must beat per-set reachable folds >= 2x.

    The same 960-singleton weighted sweep on the 50k-edge stream graph,
    evaluated twice: the *per-set* side replicates the pre-kernel weighted
    path — one reachable-id set materialized per candidate, the dense
    weight array summed over it in-process — while the *batched* side is
    ``WeightedInfluenceOracle.spread_many``, whose distinct misses now
    fold the weight array inside the shared bit-plane sweep (64 weighted
    evaluations per physical traversal).  Values must be bit-identical
    (the kernel sums in canonical ascending-id order) and call counts
    must match; the 2x floor sits well under the observed margin so a
    noisy runner cannot flip it.
    """
    graph = build_50k_stream()
    nodes = sorted(graph.node_set(), key=repr)
    weights_map = {node: float(1 + (i % 9)) for i, node in enumerate(nodes)}
    candidate_sets = [(node,) for node in nodes[:960]]
    horizon = graph.time + 10_000
    engine = graph.csr()  # engine build billed to neither side
    # .get with the oracle's default: interned ids cover nodes whose
    # edges have all expired, which node_set() (hence weights_map) omits.
    weights_arr = np.asarray(
        [
            weights_map.get(graph.node_of_id(i), 1.0)
            for i in range(graph.num_interned)
        ],
        dtype=np.float64,
    )
    id_sets = [[graph.node_id(node)] for (node,) in candidate_sets]

    def per_set_reachable():
        # The PR 4 evaluation shape: one Python id set per candidate.
        return [
            dense_weight_sum(weights_arr, engine.reachable_ids(ids, horizon))
            for ids in id_sets
        ]

    def batched():
        oracle = WeightedInfluenceOracle(
            graph, weights_map, max_cache_entries=0
        )
        return oracle.spread_many(candidate_sets, horizon), oracle.calls

    per_set_values, per_set_seconds = _best_of(3, per_set_reachable)
    (batched_values, batched_calls), batched_seconds = _best_of(3, batched)
    benchmark.pedantic(batched, rounds=1, iterations=1)

    assert batched_values == per_set_values  # bit-identical, not approx
    assert batched_calls == len(candidate_sets)

    speedup = per_set_seconds / batched_seconds
    benchmark.extra_info["per_set_seconds"] = round(per_set_seconds, 4)
    benchmark.extra_info["weighted_bitplane_seconds"] = round(batched_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\nweighted sweep of {len(candidate_sets)} sets: per-set-reachable "
        f"{per_set_seconds:.3f}s, weighted bit-plane {batched_seconds:.3f}s "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 2.0, (
        f"weighted bit-plane speedup {speedup:.2f}x below the 2x floor"
    )


def test_count_fold_parity_vs_direct_counts(benchmark):
    """The fold route under ``count`` must cost < 5% over spread_counts.

    The semantics refactor threads every oracle evaluation through the
    fold protocol (:mod:`repro.kernels.folds`).  ``CountFold.batch``
    delegates straight to the pre-fold popcount path, so the only
    admissible overhead is the dispatch itself plus the int-to-float
    conversion of the result list — never a second traversal.  This
    gate times the same 960-singleton sweep through both routes on the
    50k-edge stream graph (best-of-5 minima, so a noisy shared runner
    measures dispatch cost, not scheduler jitter) and pins the ratio at
    1.05; values must agree exactly.
    """
    graph = build_50k_stream()
    nodes = sorted(graph.node_set(), key=repr)
    id_sets = [[graph.node_id(node)] for node in nodes[:960]]
    horizon = graph.time + 10_000
    engine = graph.csr()  # engine build billed to neither side

    def direct():
        return engine.spread_counts(id_sets, horizon)

    def via_fold():
        return engine.fold_spread_sums(id_sets, horizon, "count")

    direct()  # shared warm-up: fault any lazy kernel state before timing
    direct_counts, direct_seconds = _best_of(5, direct)
    fold_sums, fold_seconds = _best_of(5, via_fold)
    benchmark.pedantic(via_fold, rounds=1, iterations=1)

    assert fold_sums == [float(count) for count in direct_counts]

    overhead = fold_seconds / direct_seconds
    benchmark.extra_info["direct_seconds"] = round(direct_seconds, 4)
    benchmark.extra_info["fold_seconds"] = round(fold_seconds, 4)
    benchmark.extra_info["overhead"] = round(overhead, 3)
    print(
        f"\ncount-fold parity on {len(id_sets)} sets: direct "
        f"{direct_seconds:.3f}s, fold route {fold_seconds:.3f}s "
        f"({(overhead - 1.0) * 100.0:+.1f}%)"
    )
    assert overhead < 1.05, (
        f"count fold route costs {(overhead - 1.0) * 100.0:.1f}% over the "
        "direct popcount path (floor: < 5%)"
    )


def test_sharded_vs_serial_spread_many(benchmark):
    """4-worker sharded ``spread_many`` must beat serial by >= 1.5x.

    A 1920-singleton candidate sweep on the 50k-edge stream graph — the
    shape of a production SIEVEADN batch — evaluated once through the
    serial bit-plane engine and once through a 4-worker sharded executor
    over the shared-memory CSR plane.  Values and oracle call counts must
    be identical *always* (sharding is value-transparent); the 1.5x
    wall-clock floor is asserted only where 4 hardware threads actually
    exist (the CI runners have them — a 1-core container records the
    numbers without gating), and the pool/plane warm-up runs outside the
    timed region, matching the persistent steady state the executor is
    built for (workers live across batches, the plane republishes per
    epoch, not per query).
    """
    from repro.parallel.executor import ShardedOracleExecutor

    graph = build_50k_stream()
    nodes = sorted(graph.node_set(), key=repr)
    candidate_sets = [(node,) for node in nodes[:1920]]
    horizon = graph.time + 10_000
    workers = 4
    graph.csr()  # engine build billed to neither side

    def serial():
        oracle = InfluenceOracle(graph, max_cache_entries=0)
        return oracle.spread_many(candidate_sets, horizon), oracle.calls

    executor = ShardedOracleExecutor(workers, min_batch=1)
    try:
        def sharded():
            oracle = InfluenceOracle(graph, max_cache_entries=0, parallel=executor)
            return oracle.spread_many(candidate_sets, horizon), oracle.calls

        sharded()  # warm-up: spawn the pool, publish + attach the plane
        pool_ran = executor.parallel_available
        (serial_values, serial_calls), serial_seconds = _best_of(3, serial)
        (shard_values, shard_calls), shard_seconds = _best_of(3, sharded)
        benchmark.pedantic(sharded, rounds=1, iterations=1)
    finally:
        executor.close()

    assert shard_values == serial_values
    assert shard_calls == serial_calls == len(candidate_sets)

    speedup = serial_seconds / shard_seconds
    cores = os.cpu_count() or 1
    floor_asserted = pool_ran and cores >= workers
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["sharded_seconds"] = round(shard_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["floor_asserted"] = floor_asserted
    print(
        f"\nsharded sweep of {len(candidate_sets)} sets ({workers} workers, "
        f"{cores} cores): serial {serial_seconds:.3f}s, sharded "
        f"{shard_seconds:.3f}s ({speedup:.1f}x, floor "
        f"{'asserted' if floor_asserted else 'skipped'})"
    )
    if floor_asserted:
        assert speedup >= 1.5, (
            f"sharded speedup {speedup:.2f}x below the 1.5x floor"
        )


def test_obs_sampling_overhead_gate(benchmark):
    """The kernel metrics hook must cost < 3% — enabled *or* disabled.

    The observability layer's contract with the kernels (ISSUE: repro.obs)
    is one ``is not None`` branch per physical sweep when disabled, and a
    1-in-``every`` sampled record when enabled.  This gate times the same
    960-singleton sweep on the 50k-edge stream graph with the sampler off
    and with it on (``every=8``, a fresh registry) and pins the enabled/
    disabled ratio at 1.03 — which bounds the disabled branch too, since
    the enabled path is a superset of it.  Counts must be identical:
    instrumentation never touches values.
    """
    from repro.kernels.instrument import (
        disable_kernel_metrics,
        enable_kernel_metrics,
    )
    from repro.obs import names as metric_names
    from repro.obs.registry import MetricsRegistry

    graph = build_50k_stream()
    nodes = sorted(graph.node_set(), key=repr)
    id_sets = [[graph.node_id(node)] for node in nodes[:960]]
    horizon = graph.time + 10_000
    engine = graph.csr()  # engine build billed to neither side

    def sweep():
        return engine.spread_counts(id_sets, horizon)

    disable_kernel_metrics()  # the baseline really is the no-sampler branch
    sweep()  # shared warm-up: fault any lazy kernel state before timing
    disabled_counts, disabled_seconds = _best_of(5, sweep)
    registry = MetricsRegistry()
    enable_kernel_metrics(every=8, registry=registry)
    try:
        sampled_counts, sampled_seconds = _best_of(5, sweep)
    finally:
        disable_kernel_metrics()
    benchmark.pedantic(sweep, rounds=1, iterations=1)

    assert sampled_counts == disabled_counts  # bit-identical, not approx
    recorded = registry.counter_values()
    assert recorded[metric_names.KERNEL_SWEEPS_TOTAL] > 0, (
        "the sampled run never reached the registry — the hook is dead"
    )

    overhead = sampled_seconds / disabled_seconds
    benchmark.extra_info["disabled_seconds"] = round(disabled_seconds, 4)
    benchmark.extra_info["sampled_seconds"] = round(sampled_seconds, 4)
    benchmark.extra_info["overhead"] = round(overhead, 3)
    print(
        f"\nobs sampling gate on {len(id_sets)} sets: disabled "
        f"{disabled_seconds:.3f}s, sampled (every=8) {sampled_seconds:.3f}s "
        f"({(overhead - 1.0) * 100.0:+.1f}%)"
    )
    assert overhead < 1.03, (
        f"kernel metrics sampling costs {(overhead - 1.0) * 100.0:.1f}% "
        "over the disabled branch (floor: < 3%)"
    )


@NATIVE_GATE
def test_native_scalar_walk_vs_python(benchmark):
    """Compiled frontier walk must beat the interpreted loop >= 3x.

    Per-set reachability on the 50k-edge stream graph: 300 single-seed
    epoch-stamped frontier walks (the ``reachable_count`` path — the
    native side runs the jitted ``native_reach`` fixpoint, the python
    side the vectorized numpy reach over the same arrays).  Counts must
    be identical set by set; the 3x floor is the acceptance bar for the
    compiled backend on its flagship loop.  Both sides are timed
    best-of-3 minima, and the one-off JIT compilation is paid before the
    timed region (the warm-up call), matching the steady state the
    backend dispatch guarantees via its import-time probe.
    """
    graph = build_50k_stream()
    graph.csr()  # compaction billed to neither side
    nodes = sorted(graph.node_set(), key=repr)
    ids = [graph.node_id(node) for node in nodes[:300]]
    horizon = float(graph.time + 10_000)

    python_engine = DeltaCSR(graph, backend="python")
    native_engine = DeltaCSR(graph, backend="native")
    assert native_engine.backend == "native"

    def walk(engine):
        return [engine.reachable_count([i], horizon) for i in ids]

    walk(native_engine)  # JIT warm-up / cache load billed to neither side
    python_counts, python_seconds = _best_of(3, lambda: walk(python_engine))
    native_counts, native_seconds = _best_of(3, lambda: walk(native_engine))
    benchmark.pedantic(lambda: walk(native_engine), rounds=1, iterations=1)

    assert native_counts == python_counts  # identical, walk by walk

    speedup = python_seconds / native_seconds
    benchmark.extra_info["python_seconds"] = round(python_seconds, 4)
    benchmark.extra_info["native_seconds"] = round(native_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\nscalar frontier walk over {len(ids)} seeds: python "
        f"{python_seconds:.3f}s, native {native_seconds:.3f}s "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 3.0, (
        f"native scalar walk speedup {speedup:.2f}x below the 3x floor"
    )


@NATIVE_GATE
def test_native_bitplane_sweep_vs_python(benchmark):
    """Compiled bit-plane sweep must beat the numpy sweep >= 3x.

    The 960-singleton batched ``spread_counts`` sweep on the 50k-edge
    stream graph — 64 uint64 visited planes per shared traversal — run
    through the same engine under both backends.  The python side is
    already vectorized numpy, so this floor certifies the jitted
    level-propagation fixpoint specifically, not interpreter overhead.
    Counts must be identical; best-of-3 minima and a pre-timed warm-up
    keep compilation and runner noise out of the measurement.
    """
    graph = build_50k_stream()
    graph.csr()  # compaction billed to neither side
    nodes = sorted(graph.node_set(), key=repr)
    id_sets = [[graph.node_id(node)] for node in nodes[:960]]
    horizon = float(graph.time + 10_000)

    python_engine = DeltaCSR(graph, backend="python")
    native_engine = DeltaCSR(graph, backend="native")
    assert native_engine.backend == "native"

    native_engine.spread_counts(id_sets, horizon)  # JIT warm-up
    python_counts, python_seconds = _best_of(
        3, lambda: python_engine.spread_counts(id_sets, horizon)
    )
    native_counts, native_seconds = _best_of(
        3, lambda: native_engine.spread_counts(id_sets, horizon)
    )
    benchmark.pedantic(
        lambda: native_engine.spread_counts(id_sets, horizon),
        rounds=1,
        iterations=1,
    )

    assert native_counts == python_counts  # identical, set by set

    speedup = python_seconds / native_seconds
    benchmark.extra_info["python_seconds"] = round(python_seconds, 4)
    benchmark.extra_info["native_seconds"] = round(native_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\nbit-plane sweep of {len(id_sets)} sets: python "
        f"{python_seconds:.3f}s, native {native_seconds:.3f}s "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 3.0, (
        f"native bit-plane speedup {speedup:.2f}x below the 3x floor"
    )
