"""Fold accumulated ``BENCH_*.json`` exports into one trajectory summary.

Every CI run uploads a pytest-benchmark JSON (``BENCH_substrate_micro.json``)
and ``benchmarks/results/`` keeps one checked-in snapshot per PR
(``BENCH_pr2_substrate_micro.json``, ...).  This script folds any number of
those files into a single ``TRAJECTORY.json``: for every benchmark, the
median runtime (plus the floors' ``extra_info`` speedups) per source file,
ordered by source label — the per-PR performance trajectory of the
substrate, ready for plotting or regression triage.

Usage::

    python benchmarks/assemble_trajectory.py \
        --output TRAJECTORY.json benchmarks/results/BENCH_*.json

Inputs that are not pytest-benchmark exports are rejected; missing inputs
are an error (CI should fail loudly, not upload an empty trajectory).
"""

from __future__ import annotations

import argparse
import json
import re
from pathlib import Path
from typing import Dict, List

_LABEL_PATTERN = re.compile(r"^BENCH_(?P<label>.+)\.json$")


def source_label(path: Path) -> str:
    """The trajectory label of one export: ``BENCH_<label>.json``."""
    match = _LABEL_PATTERN.match(path.name)
    if match is None:
        return path.stem
    return match.group("label")


def _natural_key(label: str):
    """Sort key with embedded numbers compared numerically.

    Keeps the per-PR series chronological past single digits: ``pr10``
    must follow ``pr9``, not land between ``pr1`` and ``pr2``.
    """
    return [
        int(part) if part.isdigit() else part
        for part in re.split(r"(\d+)", label)
    ]


def load_export(path: Path) -> Dict:
    """Read one pytest-benchmark JSON export (strict about its shape)."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "benchmarks" not in payload:
        raise ValueError(f"{path} is not a pytest-benchmark JSON export")
    return payload


def assemble(paths: List[Path]) -> Dict:
    """Build the trajectory document from the given exports."""
    if not paths:
        raise ValueError("no benchmark exports given")
    sources = []
    benchmarks: Dict[str, List[Dict]] = {}
    for path in sorted(paths, key=lambda p: _natural_key(source_label(p))):
        payload = load_export(path)
        label = source_label(path)
        sources.append(label)
        for row in payload["benchmarks"]:
            entry = {
                "source": label,
                "median_seconds": row["stats"]["median"],
            }
            extra = row.get("extra_info") or {}
            if extra:
                entry["extra_info"] = extra
            benchmarks.setdefault(row["name"], []).append(entry)
    return {
        "format_version": 1,
        "sources": sources,
        "benchmarks": benchmarks,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+", help="BENCH_*.json exports")
    parser.add_argument(
        "--output",
        default="TRAJECTORY.json",
        help="where to write the folded summary (default: TRAJECTORY.json)",
    )
    args = parser.parse_args(argv)
    paths = [Path(p) for p in args.inputs]
    for path in paths:
        if not path.is_file():
            parser.error(f"benchmark export not found: {path}")
    document = assemble(paths)
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    total = sum(len(rows) for rows in document["benchmarks"].values())
    print(
        f"wrote {args.output}: {len(document['benchmarks'])} benchmarks x "
        f"{len(document['sources'])} sources ({total} medians)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
