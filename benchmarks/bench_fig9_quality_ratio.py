"""Fig. 9 — time-averaged value ratio of HISTAPPROX w.r.t. Greedy.

Paper shape asserted: every ratio sits in a high band (paper: ~0.85-1.0)
and does not *improve* when eps grows (quality/efficiency trade-off).
"""

from conftest import run_once

from repro.datasets.registry import dataset_names
from repro.experiments.figures import fig9


def test_fig9_value_ratio_bars(benchmark):
    epsilons = (0.1, 0.2)
    result = run_once(
        benchmark,
        fig9,
        datasets=dataset_names(),
        num_events=250,
        k=10,
        epsilons=epsilons,
        L=150,
        p=0.01,
        seed=0,
    )
    for row in result.rows:
        for eps in epsilons:
            assert row[f"ratio(eps={eps})"] >= 0.75, row["dataset"]
            assert row[f"ratio(eps={eps})"] <= 1.0 + 1e-9, row["dataset"]
