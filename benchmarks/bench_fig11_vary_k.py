"""Fig. 11 — HISTAPPROX vs Greedy across budgets ``k``.

Paper shapes asserted: the value ratio stays high for every k, and the
call ratio *improves* (drops) as k grows — HISTAPPROX scales
logarithmically with k while greedy scales linearly.
"""

from conftest import run_once

from repro.experiments.figures import fig11


def test_fig11_budget_sweep(benchmark):
    k_values = (5, 10, 20, 40)
    result = run_once(
        benchmark,
        fig11,
        datasets=("brightkite", "gowalla"),
        num_events=250,
        k_values=k_values,
        epsilon=0.2,
        L=150,
        p=0.01,
        seed=0,
    )
    for dataset in ("brightkite", "gowalla"):
        rows = [r for r in result.rows if r["dataset"] == dataset]
        assert all(r["value_ratio"] >= 0.7 for r in rows), dataset
        # Calls ratio at the largest k must beat the smallest k.
        assert rows[-1]["calls_ratio"] < rows[0]["calls_ratio"], dataset
