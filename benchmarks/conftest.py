"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper artifact (table or figure) at reduced
scale through the same runners the CLI uses, records the produced rows in
``benchmark.extra_info`` (so ``--benchmark-json`` exports carry the data),
prints the rows (visible with ``-s``), and asserts the *shape* the paper
reports.  Absolute numbers are not compared — the substrate is a pure-Python
simulator on synthetic stand-in streams — but orderings, trends and ratio
bands must hold (see EXPERIMENTS.md).

Scales here are smaller than the CLI defaults so the whole suite finishes
in a few minutes; use ``python -m repro.experiments <fig>`` for the
larger-scale runs recorded in EXPERIMENTS.md.
"""

from __future__ import annotations


def run_once(benchmark, runner, **kwargs):
    """Run a figure runner exactly once under pytest-benchmark timing.

    The runners are full experiments (minutes at CLI scale, seconds here);
    statistical repetition is meaningless, so a single round is measured.
    """
    result = benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)
    benchmark.extra_info["figure_id"] = result.figure_id
    benchmark.extra_info["rows"] = [
        {key: _jsonable(value) for key, value in row.items()}
        for row in result.rows
    ]
    print()
    print(result.format_table())
    return result


def _jsonable(value):
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)
